//! Nonlinear function generators: fixed-point `log2` and `sin`
//! approximation circuits — scaled-down functional equivalents of the
//! EPFL `log2` and `sin` benchmarks.
//!
//! Both circuits implement a *deterministic fixed-point specification*
//! (exposed as [`log2_model`] / [`sin_model`]), so tests can require
//! exact agreement between the circuit and the software model.

use crate::primitives::{input_word, lut, mux_word, output_word};
use aig::{Aig, Lit};

/// Fixed-point base-2 logarithm circuit.
///
/// Input: `width`-bit unsigned `x`. Output: `int_bits` integer bits of
/// `floor(log2 x)` followed by `frac_bits` fraction bits, where the
/// fraction is looked up from the top `lut_bits` mantissa bits after
/// normalization (see [`log2_model`]). For `x = 0` the output is zero.
///
/// # Panics
///
/// Panics if `width < 2` or `lut_bits > 10`.
pub fn log2(width: usize, lut_bits: usize, frac_bits: usize) -> Aig {
    assert!(width >= 2, "width must be at least 2");
    assert!(lut_bits <= 10, "lut_bits too large");
    let int_bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let mut g = Aig::new(format!("log2_{width}"), width);
    let x = input_word(&mut g, 0, width, "x");

    // Priority-encode the leading-one position and build the normalized
    // mantissa with a mux cascade: for each candidate position p (from
    // MSB down), select the bits just below it.
    let mut exp: Vec<Lit> = vec![Lit::FALSE; int_bits];
    let mut mant: Vec<Lit> = vec![Lit::FALSE; lut_bits];
    let mut found = Lit::FALSE;
    for p in (0..width).rev() {
        let here = g.and(!found, x[p]); // leading one at position p
        // Exponent value p.
        for (b, e) in exp.iter_mut().enumerate() {
            if p >> b & 1 == 1 {
                *e = g.or(*e, here);
            }
        }
        // Mantissa: bits p-1 .. p-lut_bits (zero-padded).
        let window: Vec<Lit> = (0..lut_bits)
            .map(|k| {
                let idx = p as isize - 1 - k as isize;
                if idx >= 0 {
                    x[idx as usize]
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        // window is MSB-of-fraction first; store LSB-first for the mux.
        let window_lsb: Vec<Lit> = window.iter().rev().copied().collect();
        mant = mux_word(&mut g, here, &window_lsb, &mant);
        found = g.or(found, x[p]);
    }

    // Fraction lookup: t -> round(log2(1 + t / 2^lut_bits) * 2^frac_bits).
    let table: Vec<u64> = (0..1u64 << lut_bits)
        .map(|t| {
            let v = (1.0 + t as f64 / (1u64 << lut_bits) as f64).log2();
            ((v * (1u64 << frac_bits) as f64).round() as u64).min((1 << frac_bits) - 1)
        })
        .collect();
    let frac = lut(&mut g, &mant, &table, frac_bits);

    // Zero input produces zero output.
    let frac_gated: Vec<Lit> = frac.iter().map(|&f| g.and(f, found)).collect();
    output_word(&mut g, &frac_gated, "f");
    output_word(&mut g, &exp, "e");
    g
}

/// Software model of [`log2`]: returns the output value with the
/// fraction in the low `frac_bits` and the exponent above it.
pub fn log2_model(width: usize, lut_bits: usize, frac_bits: usize, x: u128) -> u128 {
    if x == 0 {
        return 0;
    }
    let p = 127 - x.leading_zeros() as usize;
    let mut t = 0u64;
    for k in 0..lut_bits {
        let idx = p as isize - 1 - k as isize;
        if idx >= 0 && x >> idx & 1 == 1 {
            t |= 1 << (lut_bits - 1 - k);
        }
    }
    let v = (1.0 + t as f64 / (1u64 << lut_bits) as f64).log2();
    let frac = ((v * (1u64 << frac_bits) as f64).round() as u128).min((1 << frac_bits) - 1);
    let _ = width;
    frac | (p as u128) << frac_bits
}

/// Fixed-point quarter-wave sine circuit.
///
/// Input: `width`-bit phase `x` in `[0, 1)` turns of a quarter wave.
/// Output: `out_bits` of `round(sin(pi/2 * x / 2^width) * (2^out_bits -
/// 1))`, looked up from the top `lut_bits` phase bits (lower bits are
/// truncated; see [`sin_model`]).
///
/// # Panics
///
/// Panics if `lut_bits > width` or `lut_bits > 10`.
pub fn sin(width: usize, lut_bits: usize, out_bits: usize) -> Aig {
    assert!(lut_bits <= width, "lut_bits must not exceed width");
    assert!(lut_bits <= 10, "lut_bits too large");
    let mut g = Aig::new(format!("sin{width}"), width);
    let x = input_word(&mut g, 0, width, "x");
    let top: Vec<Lit> = x[width - lut_bits..].to_vec();
    let table: Vec<u64> = (0..1u64 << lut_bits)
        .map(|t| {
            let phase = t as f64 / (1u64 << lut_bits) as f64;
            let v = (std::f64::consts::FRAC_PI_2 * phase).sin();
            (v * ((1u64 << out_bits) - 1) as f64).round() as u64
        })
        .collect();
    let y = lut(&mut g, &top, &table, out_bits);
    output_word(&mut g, &y, "y");
    g
}

/// Software model of [`sin`].
pub fn sin_model(width: usize, lut_bits: usize, out_bits: usize, x: u128) -> u128 {
    let t = (x >> (width - lut_bits)) as u64;
    let phase = t as f64 / (1u64 << lut_bits) as f64;
    let v = (std::f64::consts::FRAC_PI_2 * phase).sin();
    (v * ((1u64 << out_bits) - 1) as f64).round() as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, encode};

    #[test]
    fn log2_matches_model_exhaustively() {
        let (w, lb, fb) = (8, 4, 4);
        let g = log2(w, lb, fb);
        for x in 0..256u128 {
            let got = decode(&g.eval(&encode(x, w)));
            assert_eq!(got, log2_model(w, lb, fb, x), "x = {x}");
        }
    }

    #[test]
    fn log2_of_powers_of_two_has_zero_fraction() {
        let (w, lb, fb) = (8, 4, 4);
        for k in 0..8u32 {
            let v = log2_model(w, lb, fb, 1 << k);
            assert_eq!(v & 0xF, 0);
            assert_eq!(v >> fb, k as u128);
        }
    }

    #[test]
    fn sin_matches_model_exhaustively() {
        let (w, lb, ob) = (8, 5, 6);
        let g = sin(w, lb, ob);
        for x in 0..256u128 {
            let got = decode(&g.eval(&encode(x, w)));
            assert_eq!(got, sin_model(w, lb, ob, x), "x = {x}");
        }
    }

    #[test]
    fn sin_is_monotone_on_quarter_wave() {
        let (w, lb, ob) = (8, 6, 8);
        let mut prev = 0;
        for x in 0..256u128 {
            let v = sin_model(w, lb, ob, x);
            assert!(v >= prev, "sine table must be non-decreasing");
            prev = v;
        }
    }
}
