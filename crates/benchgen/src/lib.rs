//! Parameterized benchmark-circuit generators.
//!
//! The AccALS paper evaluates on ISCAS-85, small arithmetic, EPFL
//! arithmetic, and LGSynt91 circuits. Those netlist files are not
//! redistributable here, so this crate generates functional equivalents
//! from scratch:
//!
//! - exact functional analogues for the arithmetic circuits
//!   ([`adders`], [`multipliers`], [`divsqrt`]),
//! - functional stand-ins of comparable role and size for the ISCAS and
//!   LGSynt91 control circuits ([`alu`], [`ecc`], [`control`]),
//! - scaled-down generators for the large EPFL arithmetic circuits
//!   ([`divsqrt`], [`nonlinear`]).
//!
//! The [`suite`] module names the concrete circuits used by the
//! experiment harness, mirroring Table I of the paper.
//!
//! All generators share one convention: multi-bit ports are
//! least-significant-bit first, and output 0 is the LSB of the primary
//! result, matching the value decoding in the `errmetrics` crate.
//!
//! # Example
//!
//! ```
//! use benchgen::adders::rca;
//!
//! let g = rca(8);
//! assert_eq!(g.n_pis(), 16);
//! assert_eq!(g.n_pos(), 9); // 8 sum bits + carry out
//! // 3 + 5 = 8.
//! let mut ins = vec![false; 16];
//! ins[0] = true; ins[1] = true;        // a = 3
//! ins[8] = true; ins[10] = true;       // b = 5
//! let out = g.eval(&ins);
//! let sum: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
//! assert_eq!(sum, 8);
//! ```

pub mod adders;
pub mod alu;
pub mod control;
pub mod divsqrt;
pub mod ecc;
pub mod epfl;
pub mod multipliers;
pub mod nonlinear;
pub mod primitives;
pub mod suite;

/// Decodes an output vector (LSB first) into an integer, for tests and
/// examples.
pub fn decode(bits: &[bool]) -> u128 {
    bits.iter()
        .enumerate()
        .map(|(i, &b)| (b as u128) << i)
        .sum()
}

/// Encodes `value` into `width` input bits (LSB first).
pub fn encode(value: u128, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for v in [0u128, 1, 5, 255, 256, 12345] {
            assert_eq!(decode(&encode(v, 20)), v);
        }
    }
}
