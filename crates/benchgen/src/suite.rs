//! The named benchmark suite used by the experiment harness, mirroring
//! Table I of the AccALS paper.
//!
//! Each paper circuit is mapped to a generated functional stand-in (see
//! the crate docs and DESIGN.md for the substitution rationale). Every
//! circuit is lightly pre-optimized with [`aig::Aig::optimize`], playing
//! the role of the paper's ABC `strash; resyn2; amap` preparation.

use crate::control::{random_logic, RandomLogicSpec};
use crate::{adders, alu, control, divsqrt, ecc, multipliers, nonlinear};
use aig::Aig;

fn finish(mut g: Aig, name: &str) -> Aig {
    g.optimize(3).expect("generated circuits are acyclic");
    g.set_name(name);
    g
}

/// Builds a suite circuit by its paper name. Returns `None` for unknown
/// names.
///
/// Known names: `alu4`, `c1908`, `c3540`, `c880`, `cla32`, `ksa32`,
/// `mtp8`, `rca32`, `wal8` (small ISCAS & arithmetic); `div`, `log2`,
/// `sin`, `sqrt`, `square` (EPFL-like, scaled down); `alu2`, `apex6`,
/// `frg2`, `term1` (LGSynt91-like).
pub fn by_name(name: &str) -> Option<Aig> {
    let g = match name {
        // --- ISCAS-like control circuits ---
        // c880 is an 8-bit ALU with parity logic.
        "c880" => finish(alu::alu_with_parity(8, 8), "c880"),
        // c1908 is a 16-bit SEC error-correcting circuit.
        "c1908" => finish(ecc::hamming_codec(16), "c1908"),
        // c3540 is an 8-bit ALU with richer control; we use a wider ALU
        // with parity to land in the same size band.
        "c3540" => finish(alu::alu_with_parity(20, 8), "c3540"),
        // MCNC alu4.
        "alu4" => finish(alu::alu(14, 8), "alu4"),
        // --- Small arithmetic ---
        "cla32" => finish(adders::cla(32, 4), "cla32"),
        "ksa32" => finish(adders::ksa(32), "ksa32"),
        "mtp8" => finish(multipliers::array_multiplier(8), "mtp8"),
        "rca32" => finish(adders::rca(32), "rca32"),
        "wal8" => finish(multipliers::wallace_multiplier(8), "wal8"),
        // --- EPFL-like arithmetic (scaled; see DESIGN.md §2.1) ---
        "div" => finish(divsqrt::divider(16), "div"),
        "log2" => finish(nonlinear::log2(16, 7, 8), "log2"),
        "sin" => finish(nonlinear::sin(16, 8, 12), "sin"),
        "sqrt" => finish(divsqrt::sqrt(16), "sqrt"),
        "square" => finish(divsqrt::square(16), "square"),
        // --- LGSynt91-like ---
        "alu2" => finish(alu::alu(10, 8), "alu2"),
        "apex6" => finish(
            random_logic(&RandomLogicSpec {
                n_pis: 135,
                n_pos: 99,
                n_gates: 900,
                seed: 0xA9E6,
                locality: 0.6,
            }),
            "apex6",
        ),
        "frg2" => finish(
            random_logic(&RandomLogicSpec {
                n_pis: 143,
                n_pos: 139,
                n_gates: 1050,
                seed: 0xF262,
                locality: 0.6,
            }),
            "frg2",
        ),
        "term1" => finish(
            random_logic(&RandomLogicSpec {
                n_pis: 34,
                n_pos: 10,
                n_gates: 320,
                seed: 0x7321,
                locality: 0.65,
            }),
            "term1",
        ),
        // --- Extra circuits usable in examples and tests ---
        "cmp16" => finish(control::comparator(16), "cmp16"),
        "prio16" => finish(control::priority_encoder(16), "prio16"),
        "bka32" => finish(adders::brent_kung(32), "bka32"),
        "csla32" => finish(adders::carry_select(32, 8), "csla32"),
        "dad8" => finish(multipliers::dadda_multiplier(8), "dad8"),
        // Full-scale EPFL-class instances (rca64, mult128, ...) live in
        // [`crate::epfl`] and resolve through the same lookup.
        _ => return crate::epfl::by_name(name),
    };
    Some(g)
}

/// The nine small ISCAS & arithmetic circuits (column 1 of Table I).
pub const SMALL_ISCAS_ARITH: [&str; 9] = [
    "alu4", "c1908", "c3540", "c880", "cla32", "ksa32", "mtp8", "rca32", "wal8",
];

/// The five small arithmetic circuits (used for NMED/MRED and Fig. 4).
pub const SMALL_ARITH: [&str; 5] = ["cla32", "ksa32", "mtp8", "rca32", "wal8"];

/// The five EPFL-like arithmetic circuits (column 5 of Table I, scaled).
pub const EPFL_LIKE: [&str; 5] = ["div", "log2", "sin", "sqrt", "square"];

/// The four LGSynt91-like circuits (column 9 of Table I).
pub const LGSYNT_LIKE: [&str; 4] = ["alu2", "apex6", "frg2", "term1"];

/// Builds every circuit in a name list.
///
/// # Panics
///
/// Panics if a name is unknown.
pub fn build_all(names: &[&str]) -> Vec<Aig> {
    names
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown suite circuit `{n}`")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suite_circuits_build() {
        for name in SMALL_ISCAS_ARITH
            .iter()
            .chain(EPFL_LIKE.iter())
            .chain(LGSYNT_LIKE.iter())
        {
            let g = by_name(name).unwrap();
            assert!(g.n_ands() > 0, "{name} is empty");
            assert!(g.n_pos() > 0, "{name} has no outputs");
            assert_eq!(g.name(), *name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn small_arith_is_subset_of_small_iscas_arith() {
        for n in SMALL_ARITH {
            assert!(SMALL_ISCAS_ARITH.contains(&n));
        }
    }

    #[test]
    fn suite_sizes_are_in_expected_bands() {
        // The r_ref/r_sel banding in the paper keys off the AIG node
        // count; our stand-ins must land in sensible bands.
        for name in SMALL_ISCAS_ARITH {
            let g = by_name(name).unwrap();
            assert!(
                (100..2500).contains(&g.n_ands()),
                "{name}: {} gates",
                g.n_ands()
            );
        }
        for name in EPFL_LIKE {
            let g = by_name(name).unwrap();
            assert!(
                g.n_ands() >= 600,
                "{name}: {} gates, expected a large circuit",
                g.n_ands()
            );
        }
    }
}
