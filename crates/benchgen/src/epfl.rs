//! EPFL-scale arithmetic instances (full-width, tens of thousands of
//! AND nodes).
//!
//! The named suite in [`crate::suite`] substitutes *scaled-down*
//! functional stand-ins for the EPFL arithmetic benchmarks so the paper
//! tables stay tractable. These builders produce the full-size class —
//! 64/128-bit adders, multipliers, dividers, and square roots in the
//! 20k–100k AND range — as inputs for windowed synthesis and the
//! `bench_window` throughput experiments, where a dense round over the
//! whole graph is exactly what is being avoided.
//!
//! Multi-bit ports are LSB-first, as everywhere in this crate; use
//! [`crate::encode`]/[`crate::decode`] for `u128` conversions. Builders
//! are pure functions of the name — no RNG — so repeated builds are
//! identical node for node.

use crate::{adders, divsqrt, multipliers};
use aig::Aig;

/// The full-scale instance names, roughly in ascending size order.
pub const EPFL_FULL: [&str; 9] = [
    "rca64", "cla64", "ksa64", "adder128", "square64", "mult64", "div64", "sqrt128", "mult128",
];

/// One light optimization pass, not the suite's three: these circuits
/// exist to exercise scale, and repeated global rewrite passes over a
/// 100k-node graph would dominate build time without changing what the
/// benchmarks measure.
fn finish(mut g: Aig, name: &str) -> Aig {
    g.optimize(1).expect("generated circuits are acyclic");
    g.set_name(name);
    g
}

/// Builds a full-scale EPFL-class instance by name. Returns `None` for
/// unknown names. Known names are listed in [`EPFL_FULL`].
pub fn by_name(name: &str) -> Option<Aig> {
    let g = match name {
        "rca64" => finish(adders::rca(64), "rca64"),
        "cla64" => finish(adders::cla(64, 4), "cla64"),
        "ksa64" => finish(adders::ksa(64), "ksa64"),
        // The EPFL `adder` is a 128-bit adder.
        "adder128" => finish(adders::rca(128), "adder128"),
        "square64" => finish(divsqrt::square(64), "square64"),
        "mult64" => finish(multipliers::wallace_multiplier(64), "mult64"),
        "div64" => finish(divsqrt::divider(64), "div64"),
        // 128-bit radicand, 64-bit root — the EPFL `sqrt` shape.
        "sqrt128" => finish(divsqrt::sqrt(64), "sqrt128"),
        "mult128" => finish(multipliers::wallace_multiplier(128), "mult128"),
        _ => return None,
    };
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, encode};
    use prng::rngs::StdRng;
    use prng::{Rng, SeedableRng};

    fn eval2(g: &Aig, x: u128, y: u128, width: usize) -> Vec<bool> {
        let mut ins = encode(x, width);
        ins.extend(encode(y, width));
        g.eval(&ins)
    }

    #[test]
    fn port_shapes_and_size_bands() {
        for (name, pis, pos, min_ands) in [
            ("rca64", 128, 65, 250),
            ("cla64", 128, 65, 250),
            ("ksa64", 128, 65, 250),
            ("adder128", 256, 129, 500),
            ("square64", 64, 128, 10_000),
            ("mult64", 128, 128, 20_000),
            ("div64", 128, 128, 20_000),
            ("sqrt128", 128, 129, 20_000),
        ] {
            let g = by_name(name).unwrap();
            assert_eq!(g.n_pis(), pis, "{name} PI count");
            assert_eq!(g.n_pos(), pos, "{name} PO count");
            assert!(
                g.n_ands() >= min_ands,
                "{name}: {} ANDs below the expected band",
                g.n_ands()
            );
            assert_eq!(g.name(), name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn mult128_reaches_epfl_scale() {
        let g = by_name("mult128").unwrap();
        assert_eq!(g.n_pis(), 256);
        assert_eq!(g.n_pos(), 256);
        assert!(
            g.n_ands() >= 50_000,
            "mult128 must be a >=50k-AND instance, got {}",
            g.n_ands()
        );
    }

    #[test]
    fn adders_add() {
        let mut rng = StdRng::seed_from_u64(0xADD);
        for name in ["rca64", "cla64", "ksa64"] {
            let g = by_name(name).unwrap();
            for _ in 0..8 {
                let (x, y) = (rng.gen::<u64>() as u128, rng.gen::<u64>() as u128);
                assert_eq!(decode(&eval2(&g, x, y, 64)), x + y, "{name} {x}+{y}");
            }
        }
        let g = by_name("adder128").unwrap();
        for _ in 0..4 {
            // u64 operands keep the 129-bit sum inside the low 128 bits.
            let (x, y) = (rng.gen::<u64>() as u128, rng.gen::<u64>() as u128);
            let out = eval2(&g, x, y, 128);
            assert_eq!(decode(&out[..128]), x + y);
            assert!(!out[128], "carry-out must be clear for u64 operands");
        }
    }

    #[test]
    fn multipliers_and_squarer_multiply() {
        let mut rng = StdRng::seed_from_u64(0x3417);
        let g = by_name("mult64").unwrap();
        for _ in 0..6 {
            let (x, y) = (rng.gen::<u64>() as u128, rng.gen::<u64>() as u128);
            assert_eq!(decode(&eval2(&g, x, y, 64)), x * y, "mult64 {x}*{y}");
        }
        let g = by_name("square64").unwrap();
        for _ in 0..6 {
            let x = rng.gen::<u64>() as u128;
            assert_eq!(decode(&g.eval(&encode(x, 64))), x * x, "square64 {x}");
        }
        // mult128 checked with operands whose product fits the low half
        // of the 256-bit result.
        let g = by_name("mult128").unwrap();
        for _ in 0..2 {
            let (x, y) = (rng.gen::<u64>() as u128, rng.gen::<u64>() as u128);
            let out = eval2(&g, x, y, 128);
            assert_eq!(decode(&out[..128]), x * y, "mult128 {x}*{y}");
            assert!(out[128..].iter().all(|&b| !b), "high half must be clear");
        }
    }

    #[test]
    fn divider_divides_with_hardware_zero_convention() {
        let g = by_name("div64").unwrap();
        let mut rng = StdRng::seed_from_u64(0xD14);
        for _ in 0..6 {
            let a = rng.gen::<u64>() as u128;
            let d = (rng.gen::<u64>() >> rng.gen_range(0..32u32)).max(1) as u128;
            let out = eval2(&g, a, d, 64);
            assert_eq!(decode(&out[..64]), a / d, "div64 {a}/{d} quotient");
            assert_eq!(decode(&out[64..]), a % d, "div64 {a}%{d} remainder");
        }
        let out = eval2(&g, 12345, 0, 64);
        assert_eq!(decode(&out[..64]), (1u128 << 64) - 1, "q on /0");
        assert_eq!(decode(&out[64..]), 12345, "r on /0");
    }

    #[test]
    fn sqrt_takes_integer_roots() {
        let g = by_name("sqrt128").unwrap();
        let mut rng = StdRng::seed_from_u64(0x5917);
        for _ in 0..5 {
            let a = ((rng.gen::<u64>() as u128) << 32) | rng.gen::<u64>() as u128;
            let out = g.eval(&encode(a, 128));
            let root = decode(&out[..64]);
            assert!(root * root <= a && (root + 1) * (root + 1) > a, "isqrt {a}");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = by_name("mult64").unwrap();
        let b = by_name("mult64").unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        let mut rng = StdRng::seed_from_u64(0xDE7);
        let (x, y) = (rng.gen::<u64>() as u128, rng.gen::<u64>() as u128);
        assert_eq!(eval2(&a, x, y, 64), eval2(&b, x, y, 64));
    }
}
