//! Restoring divider, restoring square root, and squarer generators —
//! scaled-down functional equivalents of the EPFL `div`, `sqrt`, and
//! `square` arithmetic benchmarks.

use crate::primitives::{
    full_adder, half_adder, input_word, mux_word, output_word, ripple_sub,
};
use aig::{Aig, Lit};

/// Restoring array divider: `width`-bit dividend `a` and divisor `d`,
/// producing quotient `q` (outputs 0..width) and remainder `r`
/// (outputs width..2*width).
///
/// Division by zero follows the hardware convention: `q = 2^width - 1`
/// and `r = a`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn divider(width: usize) -> Aig {
    assert!(width > 0, "width must be positive");
    let mut g = Aig::new(format!("div{width}"), 2 * width);
    let a = input_word(&mut g, 0, width, "a");
    let d = input_word(&mut g, width, width, "d");
    let mut d_ext = d.clone();
    d_ext.push(Lit::FALSE); // width + 1 bits
    let mut r: Vec<Lit> = vec![Lit::FALSE; width + 1];
    let mut q = vec![Lit::FALSE; width];
    for i in (0..width).rev() {
        // Shift the partial remainder left and bring in dividend bit i.
        let mut rs = Vec::with_capacity(width + 1);
        rs.push(a[i]);
        rs.extend_from_slice(&r[..width]);
        let (diff, no_borrow) = ripple_sub(&mut g, &rs, &d_ext);
        q[i] = no_borrow;
        r = mux_word(&mut g, no_borrow, &diff, &rs);
    }
    output_word(&mut g, &q, "q");
    output_word(&mut g, &r[..width], "r");
    g
}

/// Restoring square root: `2 * half_width`-bit radicand, producing the
/// `half_width`-bit integer root (outputs 0..half_width) followed by the
/// remainder (`half_width + 1` outputs).
///
/// # Panics
///
/// Panics if `half_width == 0`.
pub fn sqrt(half_width: usize) -> Aig {
    assert!(half_width > 0, "half_width must be positive");
    let n = half_width;
    let in_width = 2 * n;
    let mut g = Aig::new(format!("sqrt{in_width}"), in_width);
    let a = input_word(&mut g, 0, in_width, "a");
    let w = n + 2; // working width for the partial remainder
    let mut r: Vec<Lit> = vec![Lit::FALSE; w];
    let mut q: Vec<Lit> = Vec::new(); // grows MSB-first, kept LSB-first
    for i in (0..n).rev() {
        // r = (r << 2) | a[2i+1 .. 2i]
        let mut rs = Vec::with_capacity(w);
        rs.push(a[2 * i]);
        rs.push(a[2 * i + 1]);
        rs.extend_from_slice(&r[..w - 2]);
        // t = (q << 2) | 01
        let mut t = Vec::with_capacity(w);
        t.push(Lit::TRUE);
        t.push(Lit::FALSE);
        t.extend_from_slice(&q);
        t.resize(w, Lit::FALSE);
        let (diff, no_borrow) = ripple_sub(&mut g, &rs, &t);
        r = mux_word(&mut g, no_borrow, &diff, &rs);
        // q = (q << 1) | no_borrow, still LSB-first.
        q.insert(0, no_borrow);
    }
    output_word(&mut g, &q, "q");
    output_word(&mut g, &r[..n + 1], "r");
    g
}

/// Squarer: `width`-bit input, `2 * width`-bit output `x * x`, built as a
/// Wallace-style column compressor over the shared partial products.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn square(width: usize) -> Aig {
    assert!(width > 0, "width must be positive");
    let mut g = Aig::new(format!("square{width}"), width);
    let a = input_word(&mut g, 0, width, "x");
    let mut columns = vec![Vec::new(); 2 * width];
    for i in 0..width {
        // Diagonal terms: a_i & a_i = a_i with weight 2^(2i).
        columns[2 * i].push(a[i]);
        // Off-diagonal pairs appear twice: weight 2^(i+j+1).
        for j in i + 1..width {
            let pp = g.and(a[i], a[j]);
            columns[i + j + 1].push(pp);
        }
    }
    while columns.iter().any(|c| c.len() > 2) {
        let mut next = vec![Vec::new(); columns.len()];
        for (c, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, cy) = full_adder(&mut g, col[i], col[i + 1], col[i + 2]);
                next[c].push(s);
                if c + 1 < next.len() {
                    next[c + 1].push(cy);
                }
                i += 3;
            }
            if col.len() - i == 2 {
                let (s, cy) = half_adder(&mut g, col[i], col[i + 1]);
                next[c].push(s);
                if c + 1 < next.len() {
                    next[c + 1].push(cy);
                }
            } else if col.len() - i == 1 {
                next[c].push(col[i]);
            }
        }
        columns = next;
    }
    let mut product = Vec::with_capacity(2 * width);
    let mut carry = Lit::FALSE;
    for col in &columns {
        let (x, y) = match col.len() {
            0 => (Lit::FALSE, Lit::FALSE),
            1 => (col[0], Lit::FALSE),
            _ => (col[0], col[1]),
        };
        let (s, c) = full_adder(&mut g, x, y, carry);
        product.push(s);
        carry = c;
    }
    product.truncate(2 * width);
    output_word(&mut g, &product, "p");
    g
}

#[cfg(test)]
mod tests {
    use crate::{decode, encode};

    #[test]
    fn divider_matches_integer_division() {
        let w = 6;
        let g = super::divider(w);
        for a in [0u128, 1, 5, 17, 42, 63] {
            for d in [1u128, 2, 3, 7, 33, 63] {
                let mut ins = encode(a, w);
                ins.extend(encode(d, w));
                let out = g.eval(&ins);
                let q = decode(&out[..w]);
                let r = decode(&out[w..]);
                assert_eq!(q, a / d, "{a} / {d}");
                assert_eq!(r, a % d, "{a} % {d}");
            }
        }
    }

    #[test]
    fn divider_by_zero_convention() {
        let w = 4;
        let g = super::divider(w);
        let mut ins = encode(11, w);
        ins.extend(encode(0, w));
        let out = g.eval(&ins);
        assert_eq!(decode(&out[..w]), 15);
        assert_eq!(decode(&out[w..]), 11);
    }

    #[test]
    fn divider_exhaustive_small() {
        let w = 3;
        let g = super::divider(w);
        for a in 0..8u128 {
            for d in 1..8u128 {
                let mut ins = encode(a, w);
                ins.extend(encode(d, w));
                let out = g.eval(&ins);
                assert_eq!(decode(&out[..w]), a / d);
                assert_eq!(decode(&out[w..]), a % d);
            }
        }
    }

    #[test]
    fn sqrt_matches_integer_root() {
        let half = 4; // 8-bit radicand
        let g = super::sqrt(half);
        for a in 0..256u128 {
            let ins = encode(a, 2 * half);
            let out = g.eval(&ins);
            let q = decode(&out[..half]);
            let r = decode(&out[half..]);
            let root = (a as f64).sqrt() as u128;
            assert_eq!(q, root, "sqrt({a})");
            assert_eq!(r, a - root * root, "rem({a})");
        }
    }

    #[test]
    fn square_matches_multiplication() {
        let w = 6;
        let g = super::square(w);
        for x in 0..64u128 {
            let ins = encode(x, w);
            assert_eq!(decode(&g.eval(&ins)), x * x, "{x}^2");
        }
    }
}
