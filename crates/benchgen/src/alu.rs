//! Arithmetic-logic unit generators — functional stand-ins for the MCNC
//! `alu2`/`alu4` and ISCAS `c880`/`c3540` benchmarks.

use crate::primitives::{input_word, mux_word, output_word, ripple_add, ripple_sub};
use aig::{Aig, Lit};

/// The operations an [`alu`] can perform, in opcode order.
pub const ALU_OPS: [&str; 8] = ["add", "sub", "and", "or", "xor", "slt", "shl", "notb"];

/// Builds a `width`-bit ALU supporting the first `n_ops` operations of
/// [`ALU_OPS`]. Inputs: `a` (width), `b` (width), `op`
/// (`ceil(log2(n_ops))` bits). Outputs: the result (width bits, LSB
/// first), a carry/overflow bit, and a zero flag.
///
/// # Panics
///
/// Panics if `width == 0` or `n_ops` is not in `2..=8`.
pub fn alu(width: usize, n_ops: usize) -> Aig {
    assert!(width > 0, "width must be positive");
    assert!((2..=8).contains(&n_ops), "n_ops must be in 2..=8");
    let op_bits = usize::BITS as usize - (n_ops - 1).leading_zeros() as usize;
    let mut g = Aig::new(format!("alu{width}x{n_ops}"), 2 * width + op_bits);
    let a = input_word(&mut g, 0, width, "a");
    let b = input_word(&mut g, width, width, "b");
    let op = input_word(&mut g, 2 * width, op_bits, "op");

    let (add, cout) = ripple_add(&mut g, &a, &b, Lit::FALSE);
    let (sub, no_borrow) = ripple_sub(&mut g, &a, &b);
    let and_w: Vec<Lit> = (0..width).map(|i| g.and(a[i], b[i])).collect();
    let or_w: Vec<Lit> = (0..width).map(|i| g.or(a[i], b[i])).collect();
    let xor_w: Vec<Lit> = (0..width).map(|i| g.xor(a[i], b[i])).collect();
    let mut slt = vec![Lit::FALSE; width];
    slt[0] = !no_borrow;
    let mut shl = vec![Lit::FALSE; width];
    shl[1..].copy_from_slice(&a[..width - 1]);
    let notb: Vec<Lit> = b.iter().map(|&l| !l).collect();

    let results = [add, sub, and_w, or_w, xor_w, slt, shl, notb];
    // Select via a mux tree over the opcode bits.
    let mut layer: Vec<Vec<Lit>> = results[..n_ops.next_power_of_two().min(8)]
        .iter()
        .cloned()
        .chain(std::iter::repeat(vec![Lit::FALSE; width]))
        .take(1 << op_bits)
        .collect();
    for &sel in op.iter().take(op_bits) {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(mux_word(&mut g, sel, &pair[1], &pair[0]));
        }
        layer = next;
    }
    let result = layer.pop().expect("mux tree leaves one word");

    let carry = g.mux(op[0], !no_borrow, cout); // borrow for sub, carry for add
    let nonzero = g.or_many(&result);
    output_word(&mut g, &result, "y");
    g.add_output(carry, "carry");
    g.add_output(!nonzero, "zero");
    g
}

/// A `c880`-style circuit: an 8-bit ALU with an added parity output over
/// the result, approximating the original's ALU-plus-parity structure.
pub fn alu_with_parity(width: usize, n_ops: usize) -> Aig {
    let mut g = alu(width, n_ops);
    let result_lits: Vec<Lit> = (0..width).map(|i| g.outputs()[i].lit).collect();
    let parity = g.xor_many(&result_lits);
    g.add_output(parity, "parity");
    g.set_name(format!("alup{width}x{n_ops}"));
    g
}

/// Software model of [`alu`], for tests: returns `(result, carry, zero)`.
pub fn alu_model(width: usize, a: u128, b: u128, op: usize) -> (u128, bool, bool) {
    let mask = (1u128 << width) - 1;
    let (a, b) = (a & mask, b & mask);
    let (result, carry_add) = ((a + b) & mask, a + b > mask);
    let borrow = a < b;
    let value = match op {
        0 => result,
        1 => a.wrapping_sub(b) & mask,
        2 => a & b,
        3 => a | b,
        4 => a ^ b,
        5 => (a < b) as u128,
        6 => a << 1 & mask,
        7 => !b & mask,
        _ => 0,
    };
    // The carry output is only meaningful for add/sub; the hardware muxes
    // on the opcode LSB, so the model mirrors that.
    let carry = if op % 2 == 1 { borrow } else { carry_add };
    (value, carry, value == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, encode};

    #[test]
    fn alu_matches_model() {
        let (w, n_ops) = (4, 8);
        let g = alu(w, n_ops);
        for a in [0u128, 3, 9, 15] {
            for b in [0u128, 1, 8, 15] {
                for op in 0..n_ops {
                    let mut ins = encode(a, w);
                    ins.extend(encode(b, w));
                    ins.extend(encode(op as u128, 3));
                    let out = g.eval(&ins);
                    let (want, want_carry, want_zero) = alu_model(w, a, b, op);
                    assert_eq!(decode(&out[..w]), want, "op {op}: {a}, {b}");
                    assert_eq!(out[w], want_carry, "carry op {op}: {a}, {b}");
                    assert_eq!(out[w + 1], want_zero, "zero op {op}: {a}, {b}");
                }
            }
        }
    }

    #[test]
    fn alu_with_two_ops_uses_one_select_bit() {
        let g = alu(4, 2);
        assert_eq!(g.n_pis(), 9);
        // op 0 = add, op 1 = sub.
        let mut ins = encode(7, 4);
        ins.extend(encode(3, 4));
        ins.push(false);
        assert_eq!(decode(&g.eval(&ins)[..4]), 10);
        *ins.last_mut().unwrap() = true;
        assert_eq!(decode(&g.eval(&ins)[..4]), 4);
    }

    #[test]
    fn parity_output_is_result_parity() {
        let w = 4;
        let g = alu_with_parity(w, 4);
        let mut ins = encode(0b1011, w); // a
        ins.extend(encode(0b0001, w)); // b
        ins.extend(encode(2, 2)); // op = and -> 0b0001
        let out = g.eval(&ins);
        let ones = out[..w].iter().filter(|&&b| b).count();
        assert_eq!(out.last().copied().unwrap(), ones % 2 == 1);
    }
}
