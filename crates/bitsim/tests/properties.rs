//! Property test: bit-parallel simulation agrees with the reference
//! single-pattern evaluator on random circuits and random pattern sets.

use aig::{Aig, Lit};
use bitsim::{simulate, ConeSimulator, Patterns};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    n_pis: usize,
    steps: Vec<(usize, bool, usize, bool)>,
    outputs: Vec<(usize, bool)>,
}

fn build(recipe: &Recipe) -> Aig {
    let mut g = Aig::new("random", recipe.n_pis);
    let mut lits: Vec<Lit> = (0..recipe.n_pis).map(|i| g.pi(i)).collect();
    lits.push(Lit::TRUE);
    for &(ai, an, bi, bn) in &recipe.steps {
        let a = lits[ai % lits.len()].xor_neg(an);
        let b = lits[bi % lits.len()].xor_neg(bn);
        let l = g.and(a, b);
        lits.push(l);
    }
    for &(oi, on) in &recipe.outputs {
        let l = lits[oi % lits.len()].xor_neg(on);
        g.add_output(l, format!("y{}", g.n_pos()));
    }
    g
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..7, 1usize..50, 1usize..6).prop_flat_map(|(n_pis, n_steps, n_outs)| {
        (
            proptest::collection::vec(
                (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
                n_steps,
            ),
            proptest::collection::vec((any::<usize>(), any::<bool>()), n_outs),
        )
            .prop_map(move |(steps, outputs)| Recipe {
                n_pis,
                steps,
                outputs,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_matches_eval(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let pats = Patterns::exhaustive(recipe.n_pis);
        let sim = simulate(&g, &pats);
        for p in 0..pats.n_patterns() {
            let ins: Vec<bool> = (0..recipe.n_pis).map(|i| pats.bit(i, p)).collect();
            let want = g.eval(&ins);
            for o in 0..g.n_pos() {
                let sig = sim.output_sig(&g, o);
                prop_assert_eq!(sig[p / 64] >> (p % 64) & 1 == 1, want[o]);
            }
        }
    }

    #[test]
    fn cone_resim_is_exact(recipe in recipe_strategy(), flip_seed in any::<u64>()) {
        let g = build(&recipe);
        if g.n_ands() == 0 {
            return Ok(());
        }
        let pats = Patterns::exhaustive(recipe.n_pis);
        let sim = simulate(&g, &pats);
        let mut cs = ConeSimulator::new(&g, pats.stride());
        // Deterministically pick an AND node and a deviation mask.
        let ands: Vec<_> = g.and_ids().collect();
        let n = ands[(flip_seed as usize) % ands.len()];
        let dev: Vec<u64> = (0..pats.stride() as u64)
            .map(|w| flip_seed.rotate_left((w % 63) as u32))
            .collect();
        let forced: Vec<u64> = sim.sig(n).iter().zip(&dev).map(|(s, d)| s ^ d).collect();
        let flips = cs.output_flips(&g, &sim, n, &forced);
        // Reference: evaluate pattern by pattern with the node overridden.
        for p in 0..pats.n_patterns() {
            let ins: Vec<bool> = (0..recipe.n_pis).map(|i| pats.bit(i, p)).collect();
            let forced_bit = forced[p / 64] >> (p % 64) & 1 == 1;
            let want = eval_with_override(&g, &ins, n.index(), forced_bit);
            for o in 0..g.n_pos() {
                let base = sim.output_sig(&g, o)[p / 64] >> (p % 64) & 1 == 1;
                let flipped = flips[o][p / 64] >> (p % 64) & 1 == 1;
                prop_assert_eq!(base ^ flipped, want[o], "output {} pattern {}", o, p);
            }
        }
    }
}

fn eval_with_override(g: &Aig, inputs: &[bool], pin: usize, value: bool) -> Vec<bool> {
    let order = g.topo_order().unwrap();
    let mut values = vec![false; g.n_nodes()];
    for id in order {
        let i = id.index();
        values[i] = match *g.node(id) {
            aig::Node::Const0 => false,
            aig::Node::Input(k) => inputs[k as usize],
            aig::Node::And(a, b) => {
                (values[a.node().index()] ^ a.is_neg())
                    && (values[b.node().index()] ^ b.is_neg())
            }
        };
        if i == pin {
            values[i] = value;
        }
    }
    g.outputs()
        .iter()
        .map(|o| values[o.lit.node().index()] ^ o.lit.is_neg())
        .collect()
}
