use crate::sim::Sim;
use aig::{Aig, Fanouts, Node, NodeId};
use std::sync::Arc;

/// The immutable topology snapshot a [`ConeSimulator`] works against:
/// topological positions plus the fanout index. Build it once per circuit
/// revision and share it (it is cheaply cloneable via [`Arc`]) between
/// the per-thread simulators of a parallel mask-building pass.
#[derive(Debug)]
pub struct ConeTopology {
    n_nodes: usize,
    topo_pos: Vec<u32>,
    fanouts: Fanouts,
}

impl ConeTopology {
    /// Snapshots `aig`'s topology.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn build(aig: &Aig) -> Arc<Self> {
        let order = aig
            .topo_order()
            .expect("cone simulation requires an acyclic graph");
        let mut topo_pos = vec![0u32; aig.n_nodes()];
        for (i, id) in order.iter().enumerate() {
            topo_pos[id.index()] = i as u32;
        }
        Arc::new(ConeTopology {
            n_nodes: aig.n_nodes(),
            topo_pos,
            fanouts: Fanouts::build(aig),
        })
    }

    /// The fanout index of the snapshot.
    pub fn fanouts(&self) -> &Fanouts {
        &self.fanouts
    }

    /// The number of nodes in the snapshotted graph.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Topological position of each node, indexed by node id.
    pub fn topo_pos(&self) -> &[u32] {
        &self.topo_pos
    }
}

/// Incremental re-simulation of the transitive-fanout cone of a single
/// node.
///
/// Given a base simulation, [`ConeSimulator::output_flips`] computes, for
/// every primary output, the mask of patterns whose output value changes
/// when one node's signature is forced to a new value. Only the nodes in
/// the changed node's fanout cone are re-evaluated, which is what makes
/// batch evaluation of thousands of candidate local changes tractable.
///
/// The simulator snapshots the graph's topology at construction time;
/// build a fresh one after editing the graph. When several simulators run
/// over the same circuit in parallel, build one [`ConeTopology`] and hand
/// each thread its own simulator via [`ConeSimulator::with_topology`] —
/// the scratch state is per-simulator, the topology is shared.
#[derive(Debug)]
pub struct ConeSimulator {
    topo: Arc<ConeTopology>,
    /// Scratch signature storage for touched nodes.
    scratch: Vec<u64>,
    /// Whether a node's signature currently differs from the base
    /// simulation (its new value lives in `scratch`).
    touched: Vec<bool>,
    touched_list: Vec<NodeId>,
    /// Structural-cone membership flags and the cone member list.
    in_cone: Vec<bool>,
    cone: Vec<NodeId>,
    /// Per-call re-evaluation buffer of `stride` words.
    tmp: Vec<u64>,
}

impl ConeSimulator {
    /// Prepares a cone simulator for `aig` with signatures of `stride`
    /// words.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn new(aig: &Aig, stride: usize) -> Self {
        Self::with_topology(ConeTopology::build(aig), stride)
    }

    /// Prepares a cone simulator over an existing topology snapshot,
    /// allocating only the per-simulator scratch state.
    pub fn with_topology(topo: Arc<ConeTopology>, stride: usize) -> Self {
        let n = topo.n_nodes;
        ConeSimulator {
            topo,
            scratch: vec![0u64; n * stride],
            touched: vec![false; n],
            touched_list: Vec::new(),
            in_cone: vec![false; n],
            cone: Vec::new(),
            tmp: Vec::new(),
        }
    }

    /// The fanout index snapshot held by this simulator.
    pub fn fanouts(&self) -> &Fanouts {
        &self.topo.fanouts
    }

    /// The shared topology snapshot.
    pub fn topology(&self) -> &Arc<ConeTopology> {
        &self.topo
    }

    /// Forces node `n`'s signature to `forced` and re-simulates its
    /// fanout cone, returning for each primary output the XOR between the
    /// new and the base output signature (the "flip mask").
    ///
    /// Output polarities cancel in the XOR, so flip masks are polarity
    /// independent.
    ///
    /// # Panics
    ///
    /// Panics if the simulator was built for a different graph shape or
    /// if `forced.len() != sim.stride()`.
    pub fn output_flips(
        &mut self,
        aig: &Aig,
        sim: &Sim,
        n: NodeId,
        forced: &[u64],
    ) -> Vec<Vec<u64>> {
        let stride = sim.stride();
        assert_eq!(self.topo.n_nodes, aig.n_nodes(), "simulator is stale");
        assert_eq!(forced.len(), stride);
        debug_assert!(self.touched_list.is_empty());

        // Collect the structural fanout cone and order it topologically.
        let mut cone = std::mem::take(&mut self.cone);
        cone.clear();
        self.mark(n, forced, stride);
        self.in_cone[n.index()] = true;
        cone.push(n);
        let mut head = 0;
        while head < cone.len() {
            let m = cone[head];
            head += 1;
            for &f in self.topo.fanouts.of(m) {
                if !self.in_cone[f.index()] {
                    self.in_cone[f.index()] = true;
                    cone.push(f);
                }
            }
        }
        let topo_pos = &self.topo.topo_pos;
        cone[1..].sort_unstable_by_key(|m| topo_pos[m.index()]);

        // Walk the cone in topological order, re-evaluating only nodes
        // with at least one value-changed fanin and recording a node as
        // changed (`touched`) only if its recomputed signature actually
        // differs from the base. Difference masks die out at masking
        // gates (an AND whose side input is a controlling zero on every
        // pattern), so downstream work shrinks as changes stop
        // propagating — with results identical to a full re-simulation.
        let mut tmp = std::mem::take(&mut self.tmp);
        tmp.resize(stride, 0);
        for &m in &cone[1..] {
            if let Node::And(a, b) = aig.node(m) {
                let (an, bn) = (a.node().index(), b.node().index());
                if !self.touched[an] && !self.touched[bn] {
                    continue;
                }
                let asl: &[u64] = if self.touched[an] {
                    &self.scratch[an * stride..][..stride]
                } else {
                    &sim.sig(a.node())[..stride]
                };
                let bsl: &[u64] = if self.touched[bn] {
                    &self.scratch[bn * stride..][..stride]
                } else {
                    &sim.sig(b.node())[..stride]
                };
                let na = if a.is_neg() { u64::MAX } else { 0 };
                let nb = if b.is_neg() { u64::MAX } else { 0 };
                let base = &sim.sig(m)[..stride];
                let mut diff = 0u64;
                for w in 0..stride {
                    let v = (asl[w] ^ na) & (bsl[w] ^ nb);
                    tmp[w] = v;
                    diff |= v ^ base[w];
                }
                if diff != 0 {
                    self.scratch[m.index() * stride..][..stride].copy_from_slice(&tmp);
                    self.touched[m.index()] = true;
                    self.touched_list.push(m);
                }
            }
        }
        self.tmp = tmp;

        // Collect per-output flip masks.
        let mut flips = Vec::with_capacity(aig.n_pos());
        for out in aig.outputs() {
            let d = out.lit.node();
            if self.touched[d.index()] {
                let base = sim.sig(d);
                let new = &self.scratch[d.index() * stride..d.index() * stride + stride];
                flips.push(base.iter().zip(new).map(|(b, s)| b ^ s).collect());
            } else {
                flips.push(vec![0u64; stride]);
            }
        }

        // Reset flags for the next call.
        for m in self.touched_list.drain(..) {
            self.touched[m.index()] = false;
        }
        for &m in &cone {
            self.in_cone[m.index()] = false;
        }
        self.cone = cone;
        flips
    }

    fn mark(&mut self, n: NodeId, forced: &[u64], stride: usize) {
        self.touched[n.index()] = true;
        self.touched_list.push(n);
        self.scratch[n.index() * stride..n.index() * stride + stride].copy_from_slice(forced);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Patterns;
    use crate::sim::simulate;

    /// Reference: clone the graph conceptually by simulating with a pinned
    /// node value, full-circuit.
    fn full_resim_flips(aig: &Aig, pats: &Patterns, n: NodeId, forced: &[u64]) -> Vec<Vec<u64>> {
        let base = simulate(aig, pats);
        let order = aig.topo_order().unwrap();
        let stride = pats.stride();
        let mut words = vec![0u64; aig.n_nodes() * stride];
        for id in order {
            let i = id.index();
            match *aig.node(id) {
                Node::Const0 => {}
                Node::Input(k) => {
                    words[i * stride..(i + 1) * stride].copy_from_slice(pats.pi_sig(k as usize));
                }
                Node::And(a, b) => {
                    let (an, bn) = (a.node().index(), b.node().index());
                    for w in 0..stride {
                        let wa = words[an * stride + w] ^ if a.is_neg() { u64::MAX } else { 0 };
                        let wb = words[bn * stride + w] ^ if b.is_neg() { u64::MAX } else { 0 };
                        words[i * stride + w] = wa & wb;
                    }
                }
            }
            if i == n.index() {
                words[i * stride..(i + 1) * stride].copy_from_slice(forced);
            }
        }
        aig.outputs()
            .iter()
            .map(|o| {
                let d = o.lit.node().index();
                base.sig(o.lit.node())
                    .iter()
                    .zip(&words[d * stride..(d + 1) * stride])
                    .map(|(b, s)| b ^ s)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cone_flips_match_full_resimulation() {
        // A small reconvergent circuit.
        let mut g = Aig::new("t", 4);
        let (a, b, c, d) = (g.pi(0), g.pi(1), g.pi(2), g.pi(3));
        let ab = g.and(a, b);
        let cd = g.xor(c, d);
        let m = g.mux(ab, cd, c);
        let top = g.or(m, ab);
        g.add_output(top, "y0");
        g.add_output(!cd, "y1");
        let pats = Patterns::exhaustive(4);
        let sim = simulate(&g, &pats);
        let mut cs = ConeSimulator::new(&g, pats.stride());

        for id in g.and_ids() {
            let forced: Vec<u64> = sim.sig(id).iter().map(|w| !w).collect();
            let got = cs.output_flips(&g, &sim, id, &forced);
            let want = full_resim_flips(&g, &pats, id, &forced);
            assert_eq!(got, want, "node {id}");
        }
    }

    #[test]
    fn forcing_same_value_flips_nothing() {
        let mut g = Aig::new("t", 2);
        let y = g.and(g.pi(0), g.pi(1));
        g.add_output(y, "y");
        let pats = Patterns::exhaustive(2);
        let sim = simulate(&g, &pats);
        let mut cs = ConeSimulator::new(&g, pats.stride());
        let same = sim.sig(y.node()).to_vec();
        let flips = cs.output_flips(&g, &sim, y.node(), &same);
        assert!(flips[0].iter().all(|&w| w == 0));
    }

    #[test]
    fn flip_mask_is_polarity_independent() {
        let mut g = Aig::new("t", 2);
        let y = g.and(g.pi(0), g.pi(1));
        g.add_output(!y, "ny");
        let pats = Patterns::exhaustive(2);
        let sim = simulate(&g, &pats);
        let mut cs = ConeSimulator::new(&g, pats.stride());
        let forced: Vec<u64> = sim.sig(y.node()).iter().map(|w| !w).collect();
        let flips = cs.output_flips(&g, &sim, y.node(), &forced);
        // Every pattern flips: the node is the output driver.
        assert_eq!(flips[0][0] & 0b1111, 0b1111);
    }
}
