use crate::patterns::Patterns;
use aig::{Aig, Node, NodeId};

/// The result of a bit-parallel simulation: one signature per node.
#[derive(Debug, Clone)]
pub struct Sim {
    stride: usize,
    n_patterns: usize,
    words: Vec<u64>,
}

impl Sim {
    /// The signature (64-way packed values) of node `n`.
    pub fn sig(&self, n: NodeId) -> &[u64] {
        &self.words[n.index() * self.stride..(n.index() + 1) * self.stride]
    }

    /// Number of `u64` words per signature.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of valid patterns.
    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.words.len() / self.stride.max(1)
    }

    /// The signature of output `o` of `aig`, with the output polarity
    /// applied (an owned copy).
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn output_sig(&self, aig: &Aig, o: usize) -> Vec<u64> {
        let out = &aig.outputs()[o];
        let base = self.sig(out.lit.node());
        if out.lit.is_neg() {
            base.iter().map(|w| !w).collect()
        } else {
            base.to_vec()
        }
    }

    /// The signatures of all outputs of `aig`, polarities applied.
    pub fn output_sigs(&self, aig: &Aig) -> Vec<Vec<u64>> {
        (0..aig.n_pos()).map(|o| self.output_sig(aig, o)).collect()
    }

    /// The value of node `n` under pattern `p`.
    pub fn bit(&self, n: NodeId, p: usize) -> bool {
        assert!(p < self.n_patterns);
        self.sig(n)[p / 64] >> (p % 64) & 1 == 1
    }

    /// Verifies that this simulation is a fixpoint of `aig`: the node
    /// count matches, the constant node reads all-zero, and every AND
    /// node's signature equals the AND of its (possibly complemented)
    /// fanin signatures on all valid pattern bits.
    ///
    /// Returns the first inconsistency as a human-readable message.
    /// Used by fuzz harnesses to cross-check incremental resimulation;
    /// `O(nodes × stride)`, not a production path.
    pub fn check_consistent(&self, aig: &Aig) -> Result<(), String> {
        if self.n_nodes() != aig.n_nodes() {
            return Err(format!(
                "simulation covers {} nodes, circuit has {}",
                self.n_nodes(),
                aig.n_nodes()
            ));
        }
        let mask = |w: usize| {
            let rem = self.n_patterns.saturating_sub(w * 64);
            if rem >= 64 {
                u64::MAX
            } else if rem == 0 {
                0
            } else {
                (1u64 << rem) - 1
            }
        };
        for id in aig.node_ids() {
            match *aig.node(id) {
                Node::Input(_) => {}
                Node::Const0 => {
                    for (w, &v) in self.sig(id).iter().enumerate() {
                        if v & mask(w) != 0 {
                            return Err(format!("Const0 signature nonzero in word {w}"));
                        }
                    }
                }
                Node::And(a, b) => {
                    let (sa, sb) = (self.sig(a.node()), self.sig(b.node()));
                    let s = self.sig(id);
                    for w in 0..self.stride {
                        let wa = sa[w] ^ if a.is_neg() { u64::MAX } else { 0 };
                        let wb = sb[w] ^ if b.is_neg() { u64::MAX } else { 0 };
                        if (s[w] ^ (wa & wb)) & mask(w) != 0 {
                            return Err(format!(
                                "node {id:?} signature disagrees with {a} & {b} in word {w}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Simulates `aig` on the whole pattern set, producing a signature for
/// every node.
///
/// # Panics
///
/// Panics if `pats.n_pis() != aig.n_pis()` or if the graph is cyclic.
pub fn simulate(aig: &Aig, pats: &Patterns) -> Sim {
    assert_eq!(
        pats.n_pis(),
        aig.n_pis(),
        "pattern set covers {} inputs but circuit has {}",
        pats.n_pis(),
        aig.n_pis()
    );
    let stride = pats.stride();
    let order = aig.topo_order().expect("simulation requires an acyclic graph");
    let mut words = vec![0u64; aig.n_nodes() * stride];
    for id in order {
        let i = id.index();
        match *aig.node(id) {
            Node::Const0 => {}
            Node::Input(k) => {
                words[i * stride..(i + 1) * stride].copy_from_slice(pats.pi_sig(k as usize));
            }
            Node::And(a, b) => {
                let (an, bn) = (a.node().index(), b.node().index());
                let (a_neg, b_neg) = (a.is_neg(), b.is_neg());
                for w in 0..stride {
                    let wa = words[an * stride + w] ^ if a_neg { u64::MAX } else { 0 };
                    let wb = words[bn * stride + w] ^ if b_neg { u64::MAX } else { 0 };
                    words[i * stride + w] = wa & wb;
                }
            }
        }
    }
    Sim {
        stride,
        n_patterns: pats.n_patterns(),
        words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::Lit;

    fn adder2() -> Aig {
        let mut g = Aig::new("add2", 4);
        let (a0, a1, b0, b1) = (g.pi(0), g.pi(1), g.pi(2), g.pi(3));
        let s0 = g.xor(a0, b0);
        let c0 = g.and(a0, b0);
        let t = g.xor(a1, b1);
        let s1 = g.xor(t, c0);
        let c1a = g.and(a1, b1);
        let c1b = g.and(t, c0);
        let c1 = g.or(c1a, c1b);
        g.add_output(s0, "s0");
        g.add_output(s1, "s1");
        g.add_output(c1, "s2");
        g
    }

    #[test]
    fn simulation_matches_reference_eval() {
        let g = adder2();
        let pats = Patterns::exhaustive(4);
        let sim = simulate(&g, &pats);
        for p in 0..16 {
            let ins: Vec<bool> = (0..4).map(|i| pats.bit(i, p)).collect();
            let want = g.eval(&ins);
            for (o, w) in want.iter().enumerate() {
                let sig = sim.output_sig(&g, o);
                assert_eq!(sig[p / 64] >> (p % 64) & 1 == 1, *w, "output {o} pattern {p}");
            }
        }
    }

    #[test]
    fn constant_and_complemented_outputs() {
        let mut g = Aig::new("t", 1);
        g.add_output(Lit::TRUE, "one");
        g.add_output(!g.pi(0), "na");
        let pats = Patterns::exhaustive(1);
        let sim = simulate(&g, &pats);
        assert_eq!(sim.output_sig(&g, 0)[0] & 0b11, 0b11);
        assert_eq!(sim.output_sig(&g, 1)[0] & 0b11, 0b01);
    }

    #[test]
    fn random_simulation_has_expected_shape() {
        let g = adder2();
        let pats = Patterns::random(4, 1000, 7);
        let sim = simulate(&g, &pats);
        assert_eq!(sim.n_patterns(), 1000);
        assert_eq!(sim.stride(), 16);
        assert_eq!(sim.n_nodes(), g.n_nodes());
    }
}
