//! Demand-driven re-simulation of a patched graph against a base [`Sim`].
//!
//! [`ConeSimulator`](crate::ConeSimulator) answers "what if this one
//! node's signature changed" against the *unchanged* graph. The trial
//! evaluator needs the complementary question: the graph itself has been
//! edited in place (a journaled LAC batch), and only the signatures in
//! the union of the edited nodes' fanout cones can differ from the base
//! simulation. [`PatchSimulator`] resolves exactly the nodes reachable
//! from the requested output drivers, lazily: clean regions are answered
//! straight from the base simulation, and a recomputed node whose value
//! matches the base is re-classified clean so difference masks die out at
//! masking gates just like in the cone simulator.

use crate::sim::Sim;
use aig::{Aig, Node, NodeId};

const UNRESOLVED: u8 = 0;
const CLEAN: u8 = 1;
const CHANGED: u8 = 2;

/// Reusable scratch state for re-simulating an edited graph against a
/// base simulation. One instance serves many trials: call
/// [`PatchSimulator::begin`] per trial, then [`PatchSimulator::ensure`]
/// per output driver, then read signatures back with
/// [`PatchSimulator::sig`].
#[derive(Debug)]
pub struct PatchSimulator {
    stride: usize,
    /// Per-node resolution state: unresolved, clean (base signature is
    /// valid), or changed (signature lives in `scratch`).
    state: Vec<u8>,
    /// Nodes whose state must be reset at the next [`PatchSimulator::begin`].
    visited: Vec<u32>,
    /// Signature storage for changed nodes, `stride` words each.
    scratch: Vec<u64>,
    stack: Vec<u32>,
    tmp: Vec<u64>,
}

impl PatchSimulator {
    /// A patch simulator for signatures of `stride` words.
    pub fn new(stride: usize) -> Self {
        PatchSimulator {
            stride,
            state: Vec::new(),
            visited: Vec::new(),
            scratch: Vec::new(),
            stack: Vec::new(),
            tmp: vec![0u64; stride],
        }
    }

    /// Starts a new trial over a graph of `n_nodes` nodes (the edited
    /// working graph, including appended replacement logic), clearing
    /// the state left by the previous trial.
    pub fn begin(&mut self, n_nodes: usize) {
        for n in self.visited.drain(..) {
            self.state[n as usize] = UNRESOLVED;
        }
        if self.state.len() < n_nodes {
            self.state.resize(n_nodes, UNRESOLVED);
            self.scratch.resize(n_nodes * self.stride, 0);
        }
    }

    /// Resolves `root` and everything it transitively needs.
    ///
    /// `dirty` and `rewired` are indexed by *base* node id (`work` may
    /// have appended nodes past `dirty.len()`; those are always
    /// re-evaluated): `rewired[n]` marks nodes whose fanin literals were
    /// edited, `dirty[n]` marks the rewired nodes plus their base-graph
    /// transitive fanout. Nodes outside the dirty region keep their base
    /// signatures by construction and are never re-evaluated.
    pub fn ensure(
        &mut self,
        work: &Aig,
        base: &Sim,
        dirty: &[bool],
        rewired: &[bool],
        root: NodeId,
    ) {
        let stride = self.stride;
        debug_assert_eq!(stride, base.stride());
        if self.state[root.index()] != UNRESOLVED {
            return;
        }
        self.stack.push(root.index() as u32);
        while let Some(&top) = self.stack.last() {
            let ni = top as usize;
            if self.state[ni] != UNRESOLVED {
                self.stack.pop();
                continue;
            }
            let is_old = ni < dirty.len();
            if is_old && !dirty[ni] {
                self.state[ni] = CLEAN;
                self.visited.push(top);
                self.stack.pop();
                continue;
            }
            let (a, b) = match *work.node(NodeId::new(ni)) {
                Node::And(a, b) => (a, b),
                // Constants and inputs are never rewired; their base
                // signatures stay valid.
                _ => {
                    self.state[ni] = CLEAN;
                    self.visited.push(top);
                    self.stack.pop();
                    continue;
                }
            };
            let (an, bn) = (a.node().index(), b.node().index());
            let mut pending = false;
            if self.state[an] == UNRESOLVED {
                self.stack.push(an as u32);
                pending = true;
            }
            if bn != an && self.state[bn] == UNRESOLVED {
                self.stack.push(bn as u32);
                pending = true;
            }
            if pending {
                continue;
            }
            self.stack.pop();
            if is_old && !rewired[ni] && self.state[an] == CLEAN && self.state[bn] == CLEAN {
                // Same structure as the base graph, same fanin values:
                // the difference mask died out before reaching this node.
                self.state[ni] = CLEAN;
                self.visited.push(top);
                continue;
            }
            let mut tmp = std::mem::take(&mut self.tmp);
            {
                let asl: &[u64] = if self.state[an] == CHANGED {
                    &self.scratch[an * stride..][..stride]
                } else {
                    &base.sig(a.node())[..stride]
                };
                let bsl: &[u64] = if self.state[bn] == CHANGED {
                    &self.scratch[bn * stride..][..stride]
                } else {
                    &base.sig(b.node())[..stride]
                };
                let na = if a.is_neg() { u64::MAX } else { 0 };
                let nb = if b.is_neg() { u64::MAX } else { 0 };
                for w in 0..stride {
                    tmp[w] = (asl[w] ^ na) & (bsl[w] ^ nb);
                }
            }
            let changed = if is_old {
                let old = &base.sig(NodeId::new(ni))[..stride];
                tmp.iter().zip(old).any(|(n, o)| n != o)
            } else {
                // Appended replacement logic has no base signature.
                true
            };
            if changed {
                self.scratch[ni * stride..][..stride].copy_from_slice(&tmp);
                self.state[ni] = CHANGED;
            } else {
                self.state[ni] = CLEAN;
            }
            self.visited.push(top);
            self.tmp = tmp;
        }
    }

    /// Whether `n`'s signature differs from the base simulation.
    ///
    /// Only meaningful after [`PatchSimulator::ensure`] resolved `n`.
    pub fn is_changed(&self, n: NodeId) -> bool {
        debug_assert_ne!(self.state[n.index()], UNRESOLVED, "node was never ensured");
        self.state[n.index()] == CHANGED
    }

    /// The signature of `n` in the patched graph: the scratch value if
    /// it changed, the base signature otherwise.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `n` was never resolved by
    /// [`PatchSimulator::ensure`] this trial.
    pub fn sig<'s>(&'s self, base: &'s Sim, n: NodeId) -> &'s [u64] {
        match self.state[n.index()] {
            CHANGED => &self.scratch[n.index() * self.stride..][..self.stride],
            CLEAN => base.sig(n),
            _ => panic!("node {n} was never ensured"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Patterns;
    use crate::sim::simulate;
    use aig::{Fanouts, PatchLog};

    #[test]
    fn patched_signatures_match_full_resimulation() {
        // Reconvergent circuit with a dead-end branch and a clean output.
        let mut g = Aig::new("t", 4);
        let (a, b, c, d) = (g.pi(0), g.pi(1), g.pi(2), g.pi(3));
        let ab = g.and(a, b);
        let cd = g.xor(c, d);
        let m = g.mux(ab, cd, c);
        let top = g.or(m, ab);
        g.add_output(top, "y0");
        g.add_output(!cd, "y1");
        g.add_output(d, "y2");
        let pats = Patterns::random(4, 200, 11);
        let base = simulate(&g, &pats);
        let fanouts = Fanouts::build(&g);

        // Patch: replace ab with fresh logic a & !d (appends a node).
        let mut work = g.trial_copy();
        let mut log = PatchLog::begin(&work);
        let fresh = {
            let (a, d) = (work.pi(0), work.pi(3));
            work.and(a, !d)
        };
        work.replace_via(ab.node(), fresh, fanouts.of(ab.node()), &mut log)
            .unwrap();

        // Dirty region: rewired nodes plus their base-graph fanout.
        let mut rewired = vec![false; g.n_nodes()];
        let mut dirty = vec![false; g.n_nodes()];
        let mut queue: Vec<NodeId> = Vec::new();
        for n in log.rewired_nodes() {
            if !dirty[n.index()] {
                rewired[n.index()] = true;
                dirty[n.index()] = true;
                queue.push(n);
            }
        }
        while let Some(n) = queue.pop() {
            for &f in fanouts.of(n) {
                if !dirty[f.index()] {
                    dirty[f.index()] = true;
                    queue.push(f);
                }
            }
        }

        let full = simulate(&work, &pats);
        let mut ps = PatchSimulator::new(pats.stride());
        ps.begin(work.n_nodes());
        for out in work.outputs() {
            ps.ensure(&work, &base, &dirty, &rewired, out.lit.node());
            assert_eq!(
                ps.sig(&base, out.lit.node()),
                full.sig(out.lit.node()),
                "driver {}",
                out.lit.node()
            );
        }
        // The cd/y1 cone is untouched and must resolve clean.
        assert!(!ps.is_changed(cd.node()));

        // A second trial on the same scratch: no edit at all.
        work.rollback(&mut log);
        ps.begin(work.n_nodes());
        let none = vec![false; g.n_nodes()];
        for out in work.outputs() {
            ps.ensure(&work, &base, &none, &none, out.lit.node());
            assert!(!ps.is_changed(out.lit.node()));
            assert_eq!(ps.sig(&base, out.lit.node()), base.sig(out.lit.node()));
        }
    }
}
