//! Bit-parallel simulation of AND-inverter graphs.
//!
//! Logic values for 64 input patterns are packed into each `u64` word, so
//! one pass over the graph evaluates the whole pattern set. This is the
//! workhorse behind error evaluation in approximate logic synthesis: a
//! shared [`Patterns`] sample is simulated once per circuit
//! ([`simulate`]), and candidate local changes are evaluated by
//! re-simulating only the transitive-fanout cone of the changed node
//! ([`ConeSimulator`]).
//!
//! # Example
//!
//! ```
//! use aig::Aig;
//! use bitsim::{simulate, Patterns};
//!
//! let mut g = Aig::new("xor", 2);
//! let y = g.xor(g.pi(0), g.pi(1));
//! g.add_output(y, "y");
//!
//! let pats = Patterns::exhaustive(2);
//! let sim = simulate(&g, &pats);
//! // Patterns are counted LSB-first: 00, 10, 01, 11.
//! assert_eq!(sim.output_sig(&g, 0)[0] & 0b1111, 0b0110);
//! ```

mod cone;
mod patch;
mod patterns;
mod sim;

pub use cone::{ConeSimulator, ConeTopology};
pub use patch::PatchSimulator;
pub use patterns::Patterns;
pub use sim::{simulate, Sim};

/// Counts the set bits in a signature slice, masking the tail word.
///
/// `n_patterns` tells how many leading bits are valid.
pub fn popcount(sig: &[u64], n_patterns: usize) -> usize {
    let full = n_patterns / 64;
    let mut count: usize = sig[..full].iter().map(|w| w.count_ones() as usize).sum();
    let rem = n_patterns % 64;
    if rem != 0 {
        count += (sig[full] & ((1u64 << rem) - 1)).count_ones() as usize;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcount_masks_tail() {
        let sig = vec![u64::MAX, u64::MAX];
        assert_eq!(popcount(&sig, 128), 128);
        assert_eq!(popcount(&sig, 70), 70);
        assert_eq!(popcount(&sig, 64), 64);
        assert_eq!(popcount(&sig, 3), 3);
    }
}
