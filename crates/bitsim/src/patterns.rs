use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

/// A set of input patterns, stored bit-parallel: one signature (a slice of
/// `u64` words) per primary input, with pattern `p` living in bit `p % 64`
/// of word `p / 64`.
#[derive(Debug, Clone)]
pub struct Patterns {
    n_pis: usize,
    n_patterns: usize,
    stride: usize,
    words: Vec<u64>,
}

impl Patterns {
    /// All `2^n_pis` input patterns, in binary counting order (input `i`
    /// toggles with period `2^i`).
    ///
    /// # Panics
    ///
    /// Panics if `n_pis > 24` (the pattern set would exceed 16M patterns).
    pub fn exhaustive(n_pis: usize) -> Self {
        assert!(n_pis <= 24, "exhaustive patterns limited to 24 inputs");
        let n_patterns = 1usize << n_pis;
        let stride = n_patterns.div_ceil(64);
        let mut words = vec![0u64; n_pis * stride];
        for i in 0..n_pis {
            let sig = &mut words[i * stride..(i + 1) * stride];
            if i < 6 {
                // Period fits inside a word: replicate the base pattern.
                let period = 1u64 << i;
                let mut w = 0u64;
                for b in 0..64 {
                    if (b / period as usize) % 2 == 1 {
                        w |= 1 << b;
                    }
                }
                for word in sig.iter_mut() {
                    *word = w;
                }
            } else {
                // Whole words alternate between all-0 and all-1.
                let word_period = 1usize << (i - 6);
                for (wi, word) in sig.iter_mut().enumerate() {
                    if (wi / word_period) % 2 == 1 {
                        *word = u64::MAX;
                    }
                }
            }
        }
        Patterns {
            n_pis,
            n_patterns,
            stride,
            words,
        }
    }

    /// `n_patterns` uniformly random patterns from a seeded generator.
    ///
    /// The same `(n_pis, n_patterns, seed)` triple always produces the
    /// same patterns, making experiments reproducible.
    pub fn random(n_pis: usize, n_patterns: usize, seed: u64) -> Self {
        assert!(n_patterns > 0, "need at least one pattern");
        let stride = n_patterns.div_ceil(64);
        let mut rng = StdRng::seed_from_u64(seed);
        let words = (0..n_pis * stride).map(|_| rng.gen()).collect();
        Patterns {
            n_pis,
            n_patterns,
            stride,
            words,
        }
    }

    /// `n_patterns` random patterns where input `i` is 1 with
    /// probability `prob_one[i]` — a non-uniform input distribution, as
    /// supported by the AccALS framework ("any input distribution").
    ///
    /// # Panics
    ///
    /// Panics if `prob_one.len() != n_pis` or a probability is outside
    /// `[0, 1]`.
    pub fn biased(n_pis: usize, n_patterns: usize, prob_one: &[f64], seed: u64) -> Self {
        assert_eq!(prob_one.len(), n_pis, "need one probability per input");
        assert!(
            prob_one.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must be in [0, 1]"
        );
        assert!(n_patterns > 0, "need at least one pattern");
        let stride = n_patterns.div_ceil(64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = vec![0u64; n_pis * stride];
        for (i, &p) in prob_one.iter().enumerate() {
            for w in 0..stride {
                let mut word = 0u64;
                for b in 0..64 {
                    if rng.gen_bool(p) {
                        word |= 1 << b;
                    }
                }
                words[i * stride + w] = word;
            }
        }
        Patterns {
            n_pis,
            n_patterns,
            stride,
            words,
        }
    }

    /// Chooses exhaustive patterns when `2^n_pis <= max_exhaustive`,
    /// otherwise `n_random` seeded-random patterns. This mirrors standard
    /// ALS practice: exact statistics for small circuits, Monte-Carlo for
    /// large ones.
    pub fn for_circuit(n_pis: usize, max_exhaustive: usize, n_random: usize, seed: u64) -> Self {
        if n_pis < usize::BITS as usize && (1usize << n_pis) <= max_exhaustive {
            Patterns::exhaustive(n_pis)
        } else {
            Patterns::random(n_pis, n_random, seed)
        }
    }

    /// Number of primary inputs covered.
    pub fn n_pis(&self) -> usize {
        self.n_pis
    }

    /// Number of valid patterns.
    pub fn n_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Number of `u64` words per signature.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The signature of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_pis`.
    pub fn pi_sig(&self, i: usize) -> &[u64] {
        assert!(i < self.n_pis, "input {i} out of range");
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// The value of input `i` under pattern `p`.
    pub fn bit(&self, i: usize, p: usize) -> bool {
        assert!(p < self.n_patterns);
        self.pi_sig(i)[p / 64] >> (p % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_counts_in_binary() {
        let pats = Patterns::exhaustive(3);
        assert_eq!(pats.n_patterns(), 8);
        for p in 0..8 {
            for i in 0..3 {
                assert_eq!(pats.bit(i, p), p >> i & 1 == 1, "input {i} pattern {p}");
            }
        }
    }

    #[test]
    fn exhaustive_wide_inputs_alternate_words() {
        let pats = Patterns::exhaustive(8);
        assert_eq!(pats.n_patterns(), 256);
        assert_eq!(pats.stride(), 4);
        // Input 6 toggles every 64 patterns, input 7 every 128.
        assert_eq!(pats.pi_sig(6), &[0, u64::MAX, 0, u64::MAX]);
        assert_eq!(pats.pi_sig(7), &[0, 0, u64::MAX, u64::MAX]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Patterns::random(5, 200, 42);
        let b = Patterns::random(5, 200, 42);
        let c = Patterns::random(5, 200, 43);
        assert_eq!(a.words, b.words);
        assert_ne!(a.words, c.words);
        assert_eq!(a.n_patterns(), 200);
        assert_eq!(a.stride(), 4);
    }

    #[test]
    fn biased_patterns_respect_probabilities() {
        let probs = [0.0, 1.0, 0.1, 0.9];
        let pats = Patterns::biased(4, 6400, &probs, 3);
        for (i, &p) in probs.iter().enumerate() {
            let ones = (0..6400).filter(|&j| pats.bit(i, j)).count() as f64 / 6400.0;
            assert!(
                (ones - p).abs() < 0.03,
                "input {i}: observed {ones}, expected {p}"
            );
        }
    }

    #[test]
    fn for_circuit_switches_modes() {
        let small = Patterns::for_circuit(4, 1 << 14, 1024, 1);
        assert_eq!(small.n_patterns(), 16);
        let large = Patterns::for_circuit(40, 1 << 14, 1024, 1);
        assert_eq!(large.n_patterns(), 1024);
    }
}
