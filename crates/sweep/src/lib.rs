//! Parallel design-space exploration over AccALS flows.
//!
//! A single AccALS run answers one question: "how small does this
//! circuit get under *this* metric at *this* bound?" The evaluations
//! that matter — the paper's Fig. 5 error sweep and Fig. 7 quality
//! curves, or any deployment picking an operating point — ask many such
//! questions at once, over a grid of `(metric, error_bound, seed)`
//! points. Run naively, every grid point pays full pattern simulation,
//! candidate generation, mask building, and scoring from scratch, even
//! though instances that differ only in their bound traverse *identical
//! circuit prefixes* for most of their rounds (a tighter bound's
//! trajectory is typically a prefix of a looser one's).
//!
//! This crate batches the grid into one job:
//!
//! - **Shared read-only state.** All instances over the same circuit
//!   and pattern shape share one [`Patterns`] set and one golden
//!   simulation ([`FlowInstance::with_shared`]).
//! - **Cohort execution with cache forking.** Instances of one *family*
//!   (equal configuration except the bound, [`AccalsConfig::family_eq`])
//!   start as one cohort: each round's bound-independent phases —
//!   simulation, evaluator rebase, candidate generation, mask building,
//!   scoring — run once per cohort ([`accals::step_cohort`]), and only
//!   the bound-dependent selection/trial/commit runs per member, with
//!   trial and commit results memoized across members. When members
//!   commit different edits, the shared [`FlowCaches`] are forked at the
//!   divergence round and the cohort splits into branches.
//! - **Work stealing.** Cohort rounds are tasks on one
//!   [`StealQueue`]: per-worker LIFO deques with random FIFO steals, so
//!   the box saturates whether the job is one big flow or many small
//!   ones. Intra-flow parallel phases keep their `parkit` pool: when the
//!   job has fewer instances than threads, the spare threads are handed
//!   to the instances' own pools instead.
//! - **A merged Pareto front.** Finished instances stream into a
//!   deduplicated, dominance-checked [`ParetoFront`] per
//!   `(circuit, metric)` — minimizing `(area, error)` — surfaced
//!   incrementally through the [`SweepEvent`] callback and returned in
//!   [`SweepResult::fronts`].
//!
//! # Determinism contract
//!
//! Every instance's trajectory (its [`RoundTrace`] sequence), final
//! circuit, and final error are **bit-identical** to running that
//! instance alone through [`accals::Accals`], at any worker count, any
//! steal schedule, and with cache sharing on or off. Only wall-clock,
//! the diagnostic `shared_rounds` counter, and the *arrival order* of
//! streamed events vary with the schedule; [`SweepResult`] itself is
//! deterministic (instances come back in submission order, and
//! [`ParetoFront`] is insertion-order independent).
//!
//! # Example
//!
//! ```
//! use accals::AccalsConfig;
//! use errmetrics::MetricKind;
//! use sweep::{SweepJob, SweepOptions};
//!
//! let golden = benchgen::multipliers::array_multiplier(4);
//! let mut job = SweepJob::new();
//! let c = job.add_circuit(golden);
//! let base = AccalsConfig::new(MetricKind::Er, 0.05);
//! job.add_grid(c, &base, &[0.02, 0.05, 0.1]);
//! let result = sweep::run(&job, &SweepOptions::default());
//! let front = result.front(c, MetricKind::Er).expect("front exists");
//! assert!(!front.points().is_empty());
//! ```

use accals::{AccalsConfig, FlowCaches, FlowInstance, RoundTrace, SynthesisResult};
use aig::Aig;
use bitsim::{simulate, Patterns};
use errmetrics::MetricKind;
use parkit::steal::{StealQueue, StealWorker};
use parkit::ThreadPool;
use std::collections::HashMap;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable controlling the sweep worker count, the
/// instance-level analogue of `ACCALS_THREADS` (which sizes the
/// intra-flow pools). Unset or invalid falls back to
/// [`parkit::configured_threads`].
pub const SWEEP_THREADS_ENV: &str = "ACCALS_SWEEP_THREADS";

/// The worker count a default-configured sweep uses:
/// `ACCALS_SWEEP_THREADS` if set to a positive integer, otherwise
/// whatever [`parkit::configured_threads`] reports. Malformed values
/// warn on stderr and fall back (see [`parkit::parse_thread_env`]).
pub fn configured_sweep_threads() -> usize {
    parkit::parse_thread_env(
        SWEEP_THREADS_ENV,
        std::env::var(SWEEP_THREADS_ENV).ok().as_deref(),
        parkit::configured_threads(),
    )
}

/// The process-wide serial pool handed to instances when every thread
/// is already spent at the instance level. A 1-thread `parkit` pool
/// runs everything inline on the calling thread, so one shared pool is
/// safe across concurrently stepping sweep workers.
fn serial_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(1))
}

/// Cached multi-thread pools for intra-flow parallelism, keyed by
/// `(threads, slot)` so repeated sweeps reuse the same OS threads
/// instead of leaking a fresh pool per run. Distinct slots keep
/// concurrently running cohorts off each other's submit lock.
fn cached_pool(threads: usize, slot: usize) -> &'static ThreadPool {
    if threads <= 1 {
        return serial_pool();
    }
    static POOLS: OnceLock<Mutex<HashMap<(usize, usize), &'static ThreadPool>>> = OnceLock::new();
    let mut map = POOLS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    map.entry((threads, slot))
        .or_insert_with(|| &*Box::leak(Box::new(ThreadPool::new(threads))))
}

/// Handle to a circuit registered with a [`SweepJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircuitId(usize);

impl CircuitId {
    /// The circuit's index in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

struct InstanceSpec {
    circuit: usize,
    cfg: AccalsConfig,
}

/// A batch of flow instances to explore: circuits plus
/// `(metric, error_bound, seed)` points over them.
#[derive(Default)]
pub struct SweepJob {
    circuits: Vec<Aig>,
    specs: Vec<InstanceSpec>,
}

impl SweepJob {
    /// An empty job.
    pub fn new() -> Self {
        SweepJob::default()
    }

    /// Registers a golden circuit and returns its handle.
    pub fn add_circuit(&mut self, golden: Aig) -> CircuitId {
        self.circuits.push(golden);
        CircuitId(self.circuits.len() - 1)
    }

    /// Adds one flow instance over `circuit` and returns its id.
    /// Instance ids are dense and index [`SweepResult::instances`].
    ///
    /// # Panics
    ///
    /// Panics if a configuration parameter is out of range (same
    /// validation as [`accals::Accals::new`]).
    pub fn add_instance(&mut self, circuit: CircuitId, cfg: AccalsConfig) -> usize {
        assert!(circuit.0 < self.circuits.len(), "unknown circuit");
        self.specs.push(InstanceSpec {
            circuit: circuit.0,
            cfg,
        });
        self.specs.len() - 1
    }

    /// Adds one instance per bound, cloning `base` with the bound
    /// swapped in — the common "nested bounds of one family" shape
    /// whose shared prefixes the cohort engine exploits. Returns the
    /// new instance ids.
    pub fn add_grid(&mut self, circuit: CircuitId, base: &AccalsConfig, bounds: &[f64]) -> Vec<usize> {
        bounds
            .iter()
            .map(|&b| {
                let mut cfg = base.clone();
                cfg.error_bound = b;
                self.add_instance(circuit, cfg)
            })
            .collect()
    }

    /// Number of instances queued.
    pub fn n_instances(&self) -> usize {
        self.specs.len()
    }
}

/// Options controlling how a [`SweepJob`] executes. None of them
/// affect per-instance results — only wall-clock and diagnostics.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Sweep worker threads; `0` means [`configured_sweep_threads`].
    pub threads: usize,
    /// Share caches between same-family instances via cohort execution.
    /// Off, every instance runs standalone (still sharing the read-only
    /// golden simulation, which is a pure function of the circuit).
    pub share: bool,
    /// Seed for the steal-victim streams, for replaying a particular
    /// scheduler order when debugging.
    pub steal_seed: u64,
    /// Fault injection for the fuzz harness: fork diverging cohorts one
    /// round too late (see [`accals::step_cohort_faulted`]). Breaks the
    /// determinism contract by design. Never enable outside tests.
    #[doc(hidden)]
    pub stale_fork: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            share: true,
            steal_seed: 0x5eed_5eed,
            stale_fork: false,
        }
    }
}

/// Progress events streamed to the [`run_traced`] callback, the sweep
/// analogue of [`RoundTrace`]. Arrival order is schedule-dependent;
/// the data carried by each event is not.
#[derive(Debug, Clone)]
pub enum SweepEvent {
    /// An instance completed a round (inside a cohort of `cohort_size`
    /// members — 1 means it ran the round alone).
    Round {
        instance: usize,
        round: usize,
        e_after: f64,
        n_ands: usize,
        cohort_size: usize,
    },
    /// An instance converged.
    InstanceDone {
        instance: usize,
        area: usize,
        error: f64,
        rounds: usize,
    },
    /// A finished instance entered the current Pareto front of its
    /// `(circuit, metric)` group. A later instance may still dominate
    /// it; [`SweepResult::fronts`] holds the settled fronts.
    FrontPoint {
        circuit: CircuitId,
        metric: MetricKind,
        instance: usize,
        area: usize,
        error: f64,
    },
}

/// One settled point on a Pareto front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// The instance that produced the point. For exact `(area, error)`
    /// ties, the smallest instance id represents the point.
    pub instance: usize,
    /// Final AND-gate count.
    pub area: usize,
    /// Final measured error.
    pub error: f64,
}

/// Whether `p` Pareto-dominates `q` (both coordinates no worse, at
/// least one strictly better; both minimized).
fn dominates(p: &ParetoPoint, q: &ParetoPoint) -> bool {
    p.area <= q.area && p.error <= q.error && (p.area < q.area || p.error < q.error)
}

/// A mutually non-dominated set of `(area, error)` points, both
/// minimized. Maintained sorted by ascending area (so error strictly
/// descends); duplicates collapse to the smallest instance id. The
/// settled front is independent of insertion order.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Offers a point. Returns whether the current front changed —
    /// the point entered it (possibly evicting dominated points) or
    /// took over representation of an exact coordinate tie.
    ///
    /// # Panics
    ///
    /// Panics if `error` is NaN (errors are measured, never NaN).
    pub fn insert(&mut self, p: ParetoPoint) -> bool {
        assert!(!p.error.is_nan(), "front errors must be comparable");
        if let Some(q) = self
            .points
            .iter_mut()
            .find(|q| q.area == p.area && q.error.to_bits() == p.error.to_bits())
        {
            // Exact coordinate tie: the smallest instance id represents
            // the point, making the front insertion-order independent.
            if p.instance < q.instance {
                q.instance = p.instance;
                return true;
            }
            return false;
        }
        if self.points.iter().any(|q| dominates(q, &p)) {
            return false;
        }
        self.points.retain(|q| !dominates(&p, q));
        // Surviving points have pairwise distinct areas (equal areas
        // with different errors dominate one way), so area alone orders
        // the front.
        let at = self.points.partition_point(|q| q.area < p.area);
        self.points.insert(at, p);
        true
    }

    /// The front, sorted by ascending area (descending error).
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The per-round trajectory key: what a round did to the circuit.
/// Two flows whose rounds agree on these keys are on the same branch
/// of the search tree — everything downstream (caches included) is a
/// pure function of them.
fn round_key(t: &RoundTrace) -> (usize, u64, usize) {
    (t.applied, t.e_after.to_bits(), t.n_ands_after)
}

/// A 64-bit digest of a trajectory (FNV-1a over each round's
/// [`round_key`]). Equal hashes across a batched and a standalone run
/// of the same instance certify trajectory identity cheaply.
pub fn trajectory_hash(rounds: &[RoundTrace]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for t in rounds {
        let (applied, e_bits, ands) = round_key(t);
        mix(applied as u64);
        mix(e_bits);
        mix(ands as u64);
    }
    h
}

/// The first round at which two trajectories diverge: the first index
/// whose [`round_key`]s differ, or the shorter length when one
/// trajectory is a strict prefix of the other (the short flow stopped
/// while the long one kept going — that *is* the divergence). `None`
/// means the trajectories are identical.
pub fn divergence_round(a: &[RoundTrace], b: &[RoundTrace]) -> Option<usize> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if round_key(&a[i]) != round_key(&b[i]) {
            return Some(i);
        }
    }
    if a.len() != b.len() {
        Some(common)
    } else {
        None
    }
}

/// One instance's outcome inside a [`SweepResult`].
#[derive(Debug)]
pub struct InstanceResult {
    /// The instance id ([`SweepJob::add_instance`] order).
    pub instance: usize,
    /// The circuit the instance ran over.
    pub circuit: CircuitId,
    /// The instance's error metric.
    pub metric: MetricKind,
    /// The instance's error bound.
    pub error_bound: f64,
    /// The instance's seed.
    pub seed: u64,
    /// The full synthesis result — bit-identical to a standalone run.
    pub result: SynthesisResult,
    /// [`trajectory_hash`] of `result.rounds`.
    pub trajectory_hash: u64,
    /// Rounds this instance executed inside a cohort of two or more
    /// members, i.e. rounds whose heavy phases it shared. Diagnostic;
    /// schedule-independent under a fixed job but not part of the
    /// identity contract.
    pub shared_rounds: usize,
}

/// A per-`(circuit, metric)` Pareto front of the finished instances.
#[derive(Debug)]
pub struct FrontEntry {
    /// The circuit the front is over.
    pub circuit: CircuitId,
    /// The error metric of the front's instances.
    pub metric: MetricKind,
    /// The settled front.
    pub front: ParetoFront,
}

/// The outcome of a sweep: every instance's result (in submission
/// order) plus the merged Pareto fronts.
#[derive(Debug)]
pub struct SweepResult {
    /// Per-instance results, indexed by instance id.
    pub instances: Vec<InstanceResult>,
    /// Merged fronts, one per `(circuit, metric)` pair in first-use
    /// order.
    pub fronts: Vec<FrontEntry>,
    /// Wall-clock for the whole batch.
    pub wall: Duration,
}

impl SweepResult {
    /// The front for `(circuit, metric)`, if any instance targeted it.
    pub fn front(&self, circuit: CircuitId, metric: MetricKind) -> Option<&ParetoFront> {
        self.fronts
            .iter()
            .find(|f| f.circuit == circuit && f.metric == metric)
            .map(|f| &f.front)
    }
}

/// One schedulable unit: a cohort of same-family instances whose
/// trajectories are still identical, plus the caches they share.
struct CohortTask {
    ids: Vec<usize>,
    flows: Vec<FlowInstance>,
    shared_rounds: Vec<usize>,
    caches: FlowCaches,
}

/// Runs the job and returns when every instance has converged.
pub fn run(job: &SweepJob, opts: &SweepOptions) -> SweepResult {
    run_traced(job, opts, &mut |_| {})
}

/// Like [`run`], but streams [`SweepEvent`]s to `trace` as the batch
/// progresses. The callback runs on the calling thread.
pub fn run_traced(
    job: &SweepJob,
    opts: &SweepOptions,
    trace: &mut dyn FnMut(SweepEvent),
) -> SweepResult {
    let t0 = Instant::now();
    let n = job.specs.len();
    let threads = if opts.threads == 0 {
        configured_sweep_threads()
    } else {
        opts.threads
    };

    // Group instances into initial cohorts: same circuit, same family
    // (everything but the bound equal — which implies one pattern set).
    // Sharing off, every instance is its own singleton cohort.
    let mut cohorts: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let spec = &job.specs[i];
        let joinable = opts.share.then(|| {
            cohorts.iter_mut().find(|c| {
                let s0 = &job.specs[c[0]];
                s0.circuit == spec.circuit && s0.cfg.family_eq(&spec.cfg)
            })
        });
        match joinable.flatten() {
            Some(c) => c.push(i),
            None => cohorts.push(vec![i]),
        }
    }

    // Thread budget: instance-level workers first, leftover threads to
    // the instances' own parkit pools (one big flow on a 4-thread box
    // gets a 4-thread pool; 16 small flows get 4 workers × serial).
    let workers = threads.min(n).max(1);
    let inner = (threads / workers).max(1);

    // Shared read-only state: one pattern set and one golden simulation
    // per (circuit, pattern shape).
    type PatKey = (usize, usize, usize, u64);
    type SharedSim = (Arc<Patterns>, Arc<Vec<Vec<u64>>>);
    let mut pat_cache: HashMap<PatKey, SharedSim> = HashMap::new();
    let mut tasks: Vec<CohortTask> = Vec::new();
    for (ci, members) in cohorts.iter().enumerate() {
        let pool = cached_pool(inner, ci % workers);
        let mut flows = Vec::with_capacity(members.len());
        for &i in members {
            let spec = &job.specs[i];
            let g = &job.circuits[spec.circuit];
            let key = (
                spec.circuit,
                spec.cfg.max_exhaustive,
                spec.cfg.n_random_patterns,
                spec.cfg.seed,
            );
            let (pats, sigs) = pat_cache.entry(key).or_insert_with(|| {
                let p = Arc::new(Patterns::for_circuit(
                    g.n_pis(),
                    spec.cfg.max_exhaustive,
                    spec.cfg.n_random_patterns,
                    spec.cfg.seed,
                ));
                let sigs = Arc::new(simulate(g, &p).output_sigs(g));
                (p, sigs)
            });
            flows.push(FlowInstance::with_shared(
                spec.cfg.clone(),
                pool,
                g,
                pats.clone(),
                sigs.clone(),
            ));
        }
        let caches = flows[0].caches();
        tasks.push(CohortTask {
            ids: members.clone(),
            flows,
            shared_rounds: vec![0; members.len()],
            caches,
        });
    }

    // Pre-register the (circuit, metric) fronts in first-use order so
    // the result layout is schedule-independent.
    let mut front_keys: Vec<(usize, MetricKind)> = Vec::new();
    for spec in &job.specs {
        let k = (spec.circuit, spec.cfg.metric);
        if !front_keys.contains(&k) {
            front_keys.push(k);
        }
    }
    let mut fronts: Vec<ParetoFront> = vec![ParetoFront::new(); front_keys.len()];

    let results: Mutex<Vec<Option<(SynthesisResult, usize)>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let queue: StealQueue<CohortTask> = StealQueue::new(workers, opts.steal_seed);
    for (i, t) in tasks.into_iter().enumerate() {
        queue.push(i, t);
    }
    let (tx, rx) = mpsc::channel::<SweepEvent>();
    let stale_fork = opts.stale_fork;
    std::thread::scope(|s| {
        for w in 0..workers {
            let mut worker = queue.worker(w);
            let tx = tx.clone();
            let results = &results;
            s.spawn(move || {
                while let Some(task) = worker.next_task() {
                    process_cohort(task, &worker, &tx, results, stale_fork);
                    worker.task_done();
                }
            });
        }
        drop(tx);
        // The calling thread owns the event stream: it relays worker
        // events to the callback and folds finished instances into the
        // incremental fronts.
        for ev in rx {
            if let SweepEvent::InstanceDone {
                instance,
                area,
                error,
                ..
            } = ev
            {
                let spec = &job.specs[instance];
                let ki = front_keys
                    .iter()
                    .position(|&k| k == (spec.circuit, spec.cfg.metric))
                    .expect("front pre-registered");
                trace(ev);
                if fronts[ki].insert(ParetoPoint {
                    instance,
                    area,
                    error,
                }) {
                    trace(SweepEvent::FrontPoint {
                        circuit: CircuitId(spec.circuit),
                        metric: spec.cfg.metric,
                        instance,
                        area,
                        error,
                    });
                }
            } else {
                trace(ev);
            }
        }
    });

    let instances = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let (result, shared_rounds) = slot.expect("every instance runs to completion");
            let spec = &job.specs[i];
            InstanceResult {
                instance: i,
                circuit: CircuitId(spec.circuit),
                metric: spec.cfg.metric,
                error_bound: spec.cfg.error_bound,
                seed: spec.cfg.seed,
                trajectory_hash: trajectory_hash(&result.rounds),
                shared_rounds,
                result,
            }
        })
        .collect();
    let fronts = front_keys
        .into_iter()
        .zip(fronts)
        .map(|((c, m), front)| FrontEntry {
            circuit: CircuitId(c),
            metric: m,
            front,
        })
        .collect();
    SweepResult {
        instances,
        fronts,
        wall: t0.elapsed(),
    }
}

/// Executes one cohort round: advance every member, report finished
/// members, and re-queue the surviving branches (with forked caches
/// where the cohort split).
fn process_cohort(
    mut task: CohortTask,
    worker: &StealWorker<'_, CohortTask>,
    tx: &Sender<SweepEvent>,
    results: &Mutex<Vec<Option<(SynthesisResult, usize)>>>,
    stale_fork: bool,
) {
    let cohort_size = task.flows.len();
    let before: Vec<usize> = task.flows.iter().map(|f| f.round()).collect();
    let splits = if stale_fork {
        accals::step_cohort_faulted(&mut task.flows, &mut task.caches, true)
    } else {
        accals::step_cohort(&mut task.flows, &mut task.caches)
    };
    for (i, f) in task.flows.iter().enumerate() {
        if f.round() > before[i] {
            if cohort_size >= 2 {
                task.shared_rounds[i] += 1;
            }
            if let Some(t) = f.rounds().last() {
                // A dropped receiver just means the sweep is shutting
                // down; results still land through the mutex.
                let _ = tx.send(SweepEvent::Round {
                    instance: task.ids[i],
                    round: t.round,
                    e_after: t.e_after,
                    n_ands: t.n_ands_after,
                    cohort_size,
                });
            }
        }
    }
    let mut continuing = vec![false; task.flows.len()];
    for split in &splits {
        for &m in &split.members {
            continuing[m] = true;
        }
    }
    let mut flows: Vec<Option<FlowInstance>> = task.flows.into_iter().map(Some).collect();
    for (i, slot) in flows.iter_mut().enumerate() {
        if !continuing[i] {
            let f = slot.take().expect("member not yet consumed");
            debug_assert!(f.is_finished(), "non-continuing members are finished");
            let result = f.into_result();
            let _ = tx.send(SweepEvent::InstanceDone {
                instance: task.ids[i],
                area: result.aig.n_ands(),
                error: result.error,
                rounds: result.rounds.len(),
            });
            results.lock().unwrap_or_else(|e| e.into_inner())[task.ids[i]] =
                Some((result, task.shared_rounds[i]));
        }
    }
    let mut kept_caches = Some(task.caches);
    for split in splits {
        let caches = match split.caches {
            Some(c) => c,
            None => kept_caches
                .take()
                .expect("exactly one branch keeps the cohort caches"),
        };
        let mut ids = Vec::with_capacity(split.members.len());
        let mut branch_flows = Vec::with_capacity(split.members.len());
        let mut shared_rounds = Vec::with_capacity(split.members.len());
        for &m in &split.members {
            ids.push(task.ids[m]);
            branch_flows.push(flows[m].take().expect("continuing member present"));
            shared_rounds.push(task.shared_rounds[m]);
        }
        worker.push(CohortTask {
            ids,
            flows: branch_flows,
            shared_rounds,
            caches,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(instance: usize, area: usize, error: f64) -> ParetoPoint {
        ParetoPoint {
            instance,
            area,
            error,
        }
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let mut f = ParetoFront::new();
        assert!(f.insert(pt(0, 10, 0.5)));
        assert!(f.insert(pt(1, 5, 0.9)));
        // Dominated by instance 0 on both axes.
        assert!(!f.insert(pt(2, 12, 0.6)));
        // Dominates instance 0: evicts it.
        assert!(f.insert(pt(3, 9, 0.4)));
        let areas: Vec<usize> = f.points().iter().map(|p| p.area).collect();
        assert_eq!(areas, [5, 9]);
        // Sorted by area, error strictly descending.
        assert!(f.points()[0].error > f.points()[1].error);
    }

    #[test]
    fn front_ties_resolve_to_smallest_instance() {
        let mut f = ParetoFront::new();
        assert!(f.insert(pt(7, 10, 0.5)));
        assert!(f.insert(pt(3, 10, 0.5)));
        assert!(!f.insert(pt(5, 10, 0.5)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].instance, 3);
    }

    #[test]
    fn front_equal_area_different_error_dominates() {
        let mut f = ParetoFront::new();
        assert!(f.insert(pt(0, 10, 0.5)));
        assert!(f.insert(pt(1, 10, 0.4)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].instance, 1);
    }

    fn rt(applied: usize, e_after: f64, n_ands: usize) -> RoundTrace {
        RoundTrace {
            round: 0,
            single_mode: false,
            n_candidates: 0,
            r_top: 0,
            n_sol: 0,
            n_indp: 0,
            n_rand: 0,
            chose_indp: false,
            applied,
            dropped_cycle: 0,
            reverted: false,
            e_before: 0.0,
            e_after,
            e_est: 0.0,
            n_ands_after: n_ands,
            scored_exact: 0,
            scored_pruned: 0,
            candgen_ms: 0.0,
            mask_ms: 0.0,
            score_ms: 0.0,
            select_ms: 0.0,
            trial_ms: 0.0,
            commit_ms: 0.0,
            candgen_probe_draws: 0,
            candgen_strip_cmps: 0,
            candgen_pool_hits: 0,
            candgen_pool_misses: 0,
            window_targets: 0,
        }
    }

    #[test]
    fn divergence_round_finds_first_difference() {
        let a = vec![rt(1, 0.1, 30), rt(2, 0.2, 28), rt(1, 0.3, 27)];
        let mut b = a.clone();
        assert_eq!(divergence_round(&a, &b), None);
        assert_eq!(trajectory_hash(&a), trajectory_hash(&b));
        b[1] = rt(3, 0.2, 28);
        assert_eq!(divergence_round(&a, &b), Some(1));
        assert_ne!(trajectory_hash(&a), trajectory_hash(&b));
        // Strict prefix: divergence at the shorter length.
        let c = a[..2].to_vec();
        assert_eq!(divergence_round(&a, &c), Some(2));
        assert_eq!(divergence_round(&c, &a), Some(2));
        // Timings are not part of the trajectory key.
        let mut d = a.clone();
        d[0].candgen_ms = 99.0;
        d[2].select_ms = 1.0;
        assert_eq!(divergence_round(&a, &d), None);
        assert_eq!(trajectory_hash(&a), trajectory_hash(&d));
    }

    #[test]
    fn sweep_threads_env_parses_like_accals_threads() {
        // Without the env var the fallback is parkit's configuration;
        // both are positive.
        assert!(configured_sweep_threads() >= 1);
    }

    #[test]
    fn tiny_sweep_matches_standalone() {
        use accals::{Accals, SizeParam};
        let golden = benchgen::multipliers::array_multiplier(3);
        let mut base = AccalsConfig::new(MetricKind::Er, 0.05);
        base.r_ref = SizeParam::Fixed(20);
        base.r_sel = SizeParam::Fixed(4);
        let bounds = [0.02, 0.05, 0.1];
        let mut job = SweepJob::new();
        let c = job.add_circuit(golden.clone());
        job.add_grid(c, &base, &bounds);
        for share in [true, false] {
            let opts = SweepOptions {
                threads: 2,
                share,
                ..SweepOptions::default()
            };
            let res = run(&job, &opts);
            assert_eq!(res.instances.len(), bounds.len());
            for (i, &b) in bounds.iter().enumerate() {
                let mut cfg = base.clone();
                cfg.error_bound = b;
                let alone = Accals::new(cfg).synthesize(&golden);
                let batched = &res.instances[i];
                assert_eq!(batched.error_bound, b);
                assert_eq!(
                    batched.result.error.to_bits(),
                    alone.error.to_bits(),
                    "share={share} bound={b}: error diverged"
                );
                assert_eq!(batched.result.aig.n_ands(), alone.aig.n_ands());
                assert_eq!(
                    batched.trajectory_hash,
                    trajectory_hash(&alone.rounds),
                    "share={share} bound={b}: trajectory diverged"
                );
            }
            let front = res.front(c, MetricKind::Er).expect("front exists");
            assert!(!front.is_empty());
            // Loosest-bound instance should not be beaten on area.
            let min_area = res
                .instances
                .iter()
                .map(|r| r.result.aig.n_ands())
                .min()
                .unwrap();
            assert_eq!(front.points()[0].area, min_area);
        }
    }

    #[test]
    fn events_stream_rounds_and_fronts() {
        use accals::SizeParam;
        let golden = benchgen::adders::rca(8);
        let mut base = AccalsConfig::new(MetricKind::Er, 0.05);
        base.r_ref = SizeParam::Fixed(20);
        base.r_sel = SizeParam::Fixed(4);
        let mut job = SweepJob::new();
        let c = job.add_circuit(golden);
        job.add_grid(c, &base, &[0.02, 0.08]);
        let mut rounds = 0usize;
        let mut done = 0usize;
        let mut front_points = 0usize;
        let res = run_traced(&job, &SweepOptions::default(), &mut |ev| match ev {
            SweepEvent::Round { .. } => rounds += 1,
            SweepEvent::InstanceDone { .. } => done += 1,
            SweepEvent::FrontPoint { .. } => front_points += 1,
        });
        assert_eq!(done, 2);
        assert!(front_points >= 1);
        let total_rounds: usize = res.instances.iter().map(|r| r.result.rounds.len()).sum();
        assert_eq!(rounds, total_rounds);
        // Both instances finished within their bounds.
        for r in &res.instances {
            assert!(r.result.error <= r.error_bound);
        }
    }
}
