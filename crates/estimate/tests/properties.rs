//! The crown property of the estimator: for any random circuit and any
//! generated candidate, the batch change-propagation estimate equals the
//! exact clone-apply-resimulate error, for every metric. This is what
//! makes the AccALS top-set ranking trustworthy.

use aig::{Aig, Lit};
use bitsim::{simulate, Patterns};
use errmetrics::{ErrorEval, MetricKind};
use estimate::{exact_on_sample, BatchEstimator};
use lac::{generate_candidates, CandidateConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    n_pis: usize,
    steps: Vec<(usize, bool, usize, bool)>,
    outputs: Vec<(usize, bool)>,
}

fn build(recipe: &Recipe) -> Aig {
    let mut g = Aig::new("random", recipe.n_pis);
    let mut lits: Vec<Lit> = (0..recipe.n_pis).map(|i| g.pi(i)).collect();
    for &(ai, an, bi, bn) in &recipe.steps {
        let a = lits[ai % lits.len()].xor_neg(an);
        let b = lits[bi % lits.len()].xor_neg(bn);
        lits.push(g.and(a, b));
    }
    for &(oi, on) in &recipe.outputs {
        let l = lits[oi % lits.len()].xor_neg(on);
        g.add_output(l, format!("y{}", g.n_pos()));
    }
    g
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (3usize..7, 5usize..50, 1usize..5).prop_flat_map(|(n_pis, n_steps, n_outs)| {
        (
            proptest::collection::vec(
                (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
                n_steps,
            ),
            proptest::collection::vec((any::<usize>(), any::<bool>()), n_outs),
        )
            .prop_map(move |(steps, outputs)| Recipe {
                n_pis,
                steps,
                outputs,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_estimates_match_exact_resimulation(recipe in recipe_strategy()) {
        let g = build(&recipe);
        if g.n_ands() == 0 || g.live_mask().iter().skip(1 + g.n_pis()).filter(|&&l| l).count() == 0 {
            return Ok(());
        }
        let pats = Patterns::exhaustive(recipe.n_pis);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let cands = generate_candidates(&g, &sim, &CandidateConfig {
            max_wire_probes: 8,
            k_wire: 2,
            k_binary: 2,
            ..CandidateConfig::default()
        });
        for kind in [MetricKind::Er, MetricKind::Med, MetricKind::Nmed, MetricKind::Mred, MetricKind::Mse, MetricKind::Wce] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let mut est = BatchEstimator::new(&g, &sim, &eval);
            let scored = est.score_all(&cands);
            for s in &scored {
                let exact = exact_on_sample(&g, &golden, kind, &pats, &s.lac);
                let predicted = est.current_error() + s.delta_e;
                prop_assert!(
                    (predicted - exact).abs() < 1e-9,
                    "{}: {} predicted {} vs exact {}",
                    kind, s.lac, predicted, exact
                );
            }
        }
    }

    #[test]
    fn delta_e_is_never_nan_and_gain_bounded(recipe in recipe_strategy()) {
        let g = build(&recipe);
        if g.n_ands() == 0 {
            return Ok(());
        }
        let pats = Patterns::exhaustive(recipe.n_pis);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let mut eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval.rebase(&golden);
        let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
        let mut est = BatchEstimator::new(&g, &sim, &eval);
        for s in est.score_all(&cands) {
            prop_assert!(s.delta_e.is_finite());
            prop_assert!(s.delta_e >= -1.0 - 1e-9 && s.delta_e <= 1.0 + 1e-9);
            prop_assert!(s.gain <= g.n_ands() as i64);
        }
    }
}
