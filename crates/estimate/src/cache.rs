//! Cross-round caching of flip-transfer masks.
//!
//! A node's transfer masks `M(n, o)` are per-pattern Boolean differences
//! of the fanout-cone function with respect to `n`: bit `p` of `M(n, o)`
//! is `F_o(0, sides_p) ^ F_o(1, sides_p)`. That makes them invariant to
//! `n`'s *own* simulated value — they change only when
//!
//! 1. the cone's structure changes (a node in `TFO(n)` gained, lost, or
//!    rewired a fanin, or a fanout edge inside the cone disappeared), or
//! 2. a *side input* of the cone (a fanin of a cone member outside the
//!    cone) changed its simulated value, or
//! 3. the output-driver mapping changed.
//!
//! [`MaskCache::roll`] diffs the new circuit revision against a snapshot
//! of the previous one (through the node remapping that
//! [`aig::Aig::cleanup`] returns), marks the dirty frontier — nodes with
//! structural changes, sources of removed fanout edges, and fanouts of
//! value-changed nodes — and invalidates exactly the transitive fanin
//! cone of that frontier: a node's masks survive iff its TFO provably
//! contains no change. Condition 3 triggers a full flush (output drivers
//! rarely move). Carried masks are bit-identical to recomputation, so
//! cached and from-scratch estimation agree exactly; polarity flips in
//! the remapping are harmless because Boolean-difference masks are
//! polarity independent.

use aig::{Aig, Fanouts, Lit, Node, NodeId};
use bitsim::Sim;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cached transfer masks for one node.
#[derive(Debug, Clone)]
pub struct MaskEntry {
    /// Ascending indices of the outputs this node can influence.
    pub outs: Box<[u32]>,
    /// One `stride`-word flip mask per entry of `outs`, concatenated.
    pub masks: Box<[u64]>,
    /// Per-output word footprint: for each entry of `outs`,
    /// `stride.div_ceil(64)` words where bit `w % 64` of word `w / 64`
    /// is set iff mask word `w` is nonzero. Scoring skips whole outputs
    /// whose footprint misses every deviation word.
    pub row_words: Box<[u64]>,
}

impl MaskEntry {
    /// Words per output in [`MaskEntry::row_words`].
    pub fn footprint_len(stride: usize) -> usize {
        stride.div_ceil(64)
    }
}

/// Reusable per-chunk scratch for deviation-mask construction and
/// candidate scoring. One worker chunk checks a buffer out of the
/// [`DevPool`], fills the flat sparse arrays (one `(offset, len)`
/// [`DevBuf::index`] entry per candidate) or uses the dense
/// [`DevBuf::scratch`], and returns it — so steady-state scoring
/// performs zero per-candidate heap allocations.
#[derive(Debug, Default)]
pub struct DevBuf {
    /// Ascending sparse word indices, all candidates of a chunk
    /// concatenated.
    pub words: Vec<u32>,
    /// One deviation word per entry of `words`.
    pub bits: Vec<u64>,
    /// Per-candidate `(offset, len)` into `words`/`bits`.
    pub index: Vec<(u32, u32)>,
    /// Per-candidate deviating-pattern count (the top-k ordering proxy).
    pub pops: Vec<u64>,
    /// Dense `stride`-word deviation scratch.
    pub scratch: Vec<u64>,
    /// Suffix-bound scratch for the general metric path.
    pub suffix: Vec<f64>,
}

/// A free-list of [`DevBuf`] scratch buffers shared by the scoring
/// workers. Checkout order is schedule-dependent but buffer contents
/// never influence results (sparse arrays come back cleared; dense
/// scratch is re-initialized at each use site), so pooling preserves
/// bit-identity at any thread count.
#[derive(Debug, Default)]
pub struct DevPool {
    bufs: Mutex<Vec<DevBuf>>,
    allocs: AtomicUsize,
}

impl DevPool {
    /// Takes a buffer from the pool, allocating a fresh one (and
    /// counting it) only when the pool is dry.
    pub fn checkout(&self) -> DevBuf {
        match self.bufs.lock().expect("dev pool poisoned").pop() {
            Some(b) => b,
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                DevBuf::default()
            }
        }
    }

    /// Returns a buffer, clearing the sparse arrays (capacity is kept).
    pub fn restore(&self, mut buf: DevBuf) {
        buf.words.clear();
        buf.bits.clear();
        buf.index.clear();
        buf.pops.clear();
        self.bufs.lock().expect("dev pool poisoned").push(buf);
    }

    /// Total `DevBuf` allocations since construction. Flat across warm
    /// repeat calls — the bench smoke paths assert this.
    pub fn allocations(&self) -> usize {
        self.allocs.load(Ordering::Relaxed)
    }
}

/// Counters describing cache behaviour, for benches and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls to [`MaskCache::roll`].
    pub rounds: usize,
    /// Rolls that discarded every entry (no remap, shape change, or
    /// output-driver change).
    pub flushes: usize,
    /// Entries carried across a roll.
    pub carried: usize,
    /// Mask lookups served from the cache.
    pub hits: usize,
    /// Mask lookups that required a cone resimulation.
    pub misses: usize,
}

/// Cross-round store of [`MaskEntry`] values, keyed by node id of the
/// circuit revision it was last [`MaskCache::roll`]ed to.
#[derive(Debug, Default)]
pub struct MaskCache {
    stride: usize,
    n_patterns: usize,
    generation: u64,
    entries: Vec<Option<MaskEntry>>,
    // Snapshot of the revision `entries` belongs to.
    snap_nodes: Vec<Node>,
    snap_out_lits: Vec<Lit>,
    snap_sigs: Vec<u64>,
    stats: CacheStats,
    pool: DevPool,
}

/// The image of an old-revision literal under the cleanup remapping.
fn image(remap: &[Option<Lit>], l: Lit) -> Option<Lit> {
    remap.get(l.node().index()).copied().flatten().map(|r| {
        Lit::new(r.node(), r.is_neg() ^ l.is_neg())
    })
}

impl MaskCache {
    /// An empty cache; the first [`MaskCache::roll`] sizes it.
    pub fn new() -> Self {
        MaskCache::default()
    }

    /// Monotone revision counter, bumped once per [`MaskCache::roll`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The scoring scratch pool. Survives [`MaskCache::roll`], so warm
    /// rounds reuse the buffers the previous round allocated.
    pub fn dev_pool(&self) -> &DevPool {
        &self.pool
    }

    /// Forks the cache at its current revision: the fork carries the
    /// same entries and snapshot, so rolling it forward along a
    /// *different* branch of edits yields exactly what a cache that had
    /// followed that branch alone would hold. The scratch [`DevPool`]
    /// is not shared — buffer contents never influence results, so the
    /// fork starts with an empty pool.
    /// Drops every cached entry whose node is not set in `keep`
    /// (indexed by `NodeId::index` at the cache's current revision).
    /// Dropping an entry only ever costs a recomputation on the next
    /// lookup — never correctness — so windowed flows use this to keep
    /// transfer-mask memory `O(window)` instead of accumulating masks
    /// for every region the rotation has visited.
    pub fn retain_only(&mut self, keep: &[bool]) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.is_some() && !keep.get(i).copied().unwrap_or(false) {
                *e = None;
            }
        }
    }

    pub fn fork(&self) -> MaskCache {
        MaskCache {
            stride: self.stride,
            n_patterns: self.n_patterns,
            generation: self.generation,
            entries: self.entries.clone(),
            snap_nodes: self.snap_nodes.clone(),
            snap_out_lits: self.snap_out_lits.clone(),
            snap_sigs: self.snap_sigs.clone(),
            stats: self.stats,
            pool: DevPool::default(),
        }
    }

    /// Rolls the cache forward to the circuit revision `(aig, sim)`.
    ///
    /// `remap` maps node ids of the previous revision — including nodes
    /// appended by LAC application before `cleanup()` — to literals of
    /// `aig`, exactly as returned by [`aig::Aig::cleanup`]; `None` means
    /// the node was deleted. Passing `remap = None` (first round, or an
    /// unknown edit) flushes every entry. `fanouts` must be built for
    /// `aig`.
    pub fn roll(
        &mut self,
        aig: &Aig,
        sim: &Sim,
        fanouts: &Fanouts,
        remap: Option<&[Option<Lit>]>,
    ) {
        self.generation += 1;
        self.stats.rounds += 1;
        let n_new = aig.n_nodes();
        let stride = sim.stride();

        let carried = if self.snap_nodes.is_empty()
            || stride != self.stride
            || sim.n_patterns() != self.n_patterns
        {
            None
        } else {
            remap.and_then(|r| self.carry_entries(aig, sim, fanouts, r))
        };
        self.entries = match carried {
            Some(entries) => entries,
            None => {
                if self.entries.iter().any(Option::is_some) {
                    self.stats.flushes += 1;
                }
                vec![None; n_new]
            }
        };

        // Snapshot this revision for the next roll.
        self.stride = stride;
        self.n_patterns = sim.n_patterns();
        self.snap_nodes = (0..n_new).map(|i| *aig.node(NodeId::new(i))).collect();
        self.snap_out_lits = aig.outputs().iter().map(|o| o.lit).collect();
        self.snap_sigs.clear();
        self.snap_sigs.reserve(n_new * stride);
        for i in 0..n_new {
            self.snap_sigs.extend_from_slice(sim.sig(NodeId::new(i)));
        }
    }

    /// Computes the surviving entry table, or `None` to flush.
    fn carry_entries(
        &mut self,
        aig: &Aig,
        sim: &Sim,
        fanouts: &Fanouts,
        remap: &[Option<Lit>],
    ) -> Option<Vec<Option<MaskEntry>>> {
        let n_new = aig.n_nodes();
        // Condition 3: any change to the output-driver mapping flushes.
        if aig.n_pos() != self.snap_out_lits.len() {
            return None;
        }
        for (out, &old) in aig.outputs().iter().zip(&self.snap_out_lits) {
            if image(remap, old) != Some(out.lit) {
                return None;
            }
        }

        // Preimages of each new node; strash collisions drop both.
        let mut pre: Vec<Option<(u32, bool)>> = vec![None; n_new];
        let mut collide = vec![false; n_new];
        for (p, r) in remap.iter().enumerate() {
            if let Some(l) = r {
                let m = l.node().index();
                if pre[m].is_some() {
                    collide[m] = true;
                } else {
                    pre[m] = Some((p as u32, l.is_neg()));
                }
            }
        }

        let mut marked = vec![false; n_new];
        // A dead, collided, or rewired old node removes fanout edges;
        // the surviving sources of those edges lose part of their cone.
        let mut lost_sources: Vec<NodeId> = Vec::new();
        let mark_old_fanins = |p: usize, lost: &mut Vec<NodeId>| {
            if let Some(Node::And(a, b)) = self.snap_nodes.get(p) {
                for l in [*a, *b] {
                    if let Some(img) = image(remap, l) {
                        lost.push(img.node());
                    }
                }
            }
        };
        for (p, r) in remap.iter().enumerate() {
            match r {
                None => mark_old_fanins(p, &mut lost_sources),
                Some(l) if collide[l.node().index()] => mark_old_fanins(p, &mut lost_sources),
                Some(_) => {}
            }
        }

        for m in 0..n_new {
            let id = NodeId::new(m);
            let clean_struct = match pre[m] {
                Some((p, _)) if !collide[m] => self
                    .snap_nodes
                    .get(p as usize)
                    .is_some_and(|old| struct_eq(aig.node(id), old, remap)),
                _ => false,
            };
            if !clean_struct {
                // Condition 1: new or rewired node; its old fanout edges
                // (if any) are gone too.
                marked[m] = true;
                if let Some((p, _)) = pre[m] {
                    mark_old_fanins(p as usize, &mut lost_sources);
                }
                // A rewired node also feeds its readers a value, and a
                // reader's masks embedded the value its *old* fanin had
                // at that position. If the new value differs anywhere —
                // or there is nothing to compare against — the readers'
                // cones are contaminated exactly as in condition 2. The
                // readers themselves can be structurally clean (replace
                // rewires consumers in place), and their own values can
                // stay unchanged when the deviation is masked at their
                // other fanin, so nothing else marks them.
                let value_preserved = !collide[m]
                    && pre[m].is_some_and(|(p, neg)| {
                        (p as usize) < self.snap_nodes.len()
                            && self.sig_matches(sim, id, p as usize, neg)
                    });
                if !value_preserved {
                    for &f in fanouts.of(id) {
                        marked[f.index()] = true;
                    }
                }
                continue;
            }
            let (p, neg) = pre[m].expect("clean nodes have a preimage");
            if !self.sig_matches(sim, id, p as usize, neg) {
                // Condition 2: a value change contaminates every cone
                // that reads this node — i.e. its fanouts' cones. The
                // node's own masks are value independent and survive.
                for &f in fanouts.of(id) {
                    marked[f.index()] = true;
                }
            }
        }
        for id in lost_sources {
            marked[id.index()] = true;
        }

        // Invalid = transitive fanin (inclusive) of the marked frontier:
        // exactly the nodes whose TFO intersects a change.
        let mut invalid = marked;
        let mut stack: Vec<NodeId> = invalid
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        while let Some(m) = stack.pop() {
            if let Node::And(a, b) = aig.node(m) {
                for l in [*a, *b] {
                    let f = l.node();
                    if !invalid[f.index()] {
                        invalid[f.index()] = true;
                        stack.push(f);
                    }
                }
            }
        }

        let mut old_entries = std::mem::take(&mut self.entries);
        let mut out: Vec<Option<MaskEntry>> = vec![None; n_new];
        let mut carried = 0usize;
        for (m, slot) in out.iter_mut().enumerate() {
            if invalid[m] {
                continue;
            }
            if let Some((p, _)) = pre[m] {
                if let Some(e) = old_entries.get_mut(p as usize).and_then(Option::take) {
                    *slot = Some(e);
                    carried += 1;
                }
            }
        }
        self.stats.carried += carried;
        Some(out)
    }

    fn sig_matches(&self, sim: &Sim, m: NodeId, p: usize, neg: bool) -> bool {
        let new = sim.sig(m);
        let old = &self.snap_sigs[p * self.stride..(p + 1) * self.stride];
        for w in 0..self.stride {
            let ow = if neg { !old[w] } else { old[w] };
            if (new[w] ^ ow) & word_mask(self.n_patterns, w) != 0 {
                return false;
            }
        }
        true
    }

    /// Ensures the entry table covers `aig` at the given sample shape,
    /// without diffing (used by cache-less estimators for scratch
    /// storage within a single round).
    pub(crate) fn reset_for(&mut self, aig: &Aig, sim: &Sim) {
        self.stride = sim.stride();
        self.n_patterns = sim.n_patterns();
        self.entries.clear();
        self.entries.resize(aig.n_nodes(), None);
    }

    pub(crate) fn get(&self, n: NodeId) -> Option<&MaskEntry> {
        self.entries.get(n.index()).and_then(Option::as_ref)
    }

    pub(crate) fn insert(&mut self, n: NodeId, e: MaskEntry) {
        self.entries[n.index()] = Some(e);
    }

    pub(crate) fn note_lookups(&mut self, hits: usize, misses: usize) {
        self.stats.hits += hits;
        self.stats.misses += misses;
    }
}

/// Structural equality of a new node against its old preimage, with the
/// old fanins carried through the remapping (unordered, since strash may
/// normalize fanin order).
fn struct_eq(new: &Node, old: &Node, remap: &[Option<Lit>]) -> bool {
    match (new, old) {
        (Node::Const0, Node::Const0) => true,
        (Node::Input(a), Node::Input(b)) => a == b,
        (Node::And(a, b), Node::And(oa, ob)) => {
            let (Some(ia), Some(ib)) = (image(remap, *oa), image(remap, *ob)) else {
                return false;
            };
            (ia == *a && ib == *b) || (ia == *b && ib == *a)
        }
        _ => false,
    }
}

fn word_mask(n_patterns: usize, w: usize) -> u64 {
    let rem = n_patterns.saturating_sub(w * 64);
    if rem >= 64 {
        u64::MAX
    } else if rem == 0 {
        0
    } else {
        (1u64 << rem) - 1
    }
}
