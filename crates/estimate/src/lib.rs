//! Batch error-increase estimation for LAC candidates.
//!
//! The expensive step of an iterative ALS flow is scoring every candidate
//! LAC: how much would the circuit error grow if this change were
//! applied? This crate implements the change-propagation scheme used by
//! SEALS/VECBEE-class estimators:
//!
//! 1. per target node `n`, one fanout-cone re-simulation with `n`
//!    complemented yields the *transfer masks* `M(n, o)` — the patterns
//!    where flipping `n` flips output `o`;
//! 2. a candidate at `n` with deviation mask `D` (patterns where the
//!    substituted function differs from `n`) then flips output `o`
//!    exactly on `D & M(n, o)`, because a single-node change propagates
//!    deterministically per pattern;
//! 3. the incremental [`errmetrics::ErrorEval`] turns those flip masks
//!    into the candidate's error in time proportional to the flipped
//!    patterns.
//!
//! Step 2 is *exact on the sample* for a single LAC — the estimation gap
//! the AccALS paper reasons about appears only when summing the `ΔE` of
//! several LACs applied together (its Eq. (1)). The property tests check
//! this exactness against [`exact_on_sample`], the slow
//! clone-apply-resimulate reference.
//!
//! Both phases run on a [`parkit::ThreadPool`]: mask construction is
//! parallel over target nodes (each worker chunk owns a private
//! [`ConeSimulator`] over a shared [`ConeTopology`]), and scoring is
//! parallel over candidates. Per-candidate work touches only the words
//! where the deviation mask is nonzero, via
//! [`errmetrics::ErrorEval::with_flips_words`]. Every per-candidate
//! value is computed independently and written to its input slot, so
//! results are bit-identical at any thread count. Transfer masks can be
//! reused across synthesis rounds through a [`MaskCache`] — see
//! [`BatchEstimator::with_cache`].

mod cache;

pub use cache::{CacheStats, DevBuf, DevPool, MaskCache, MaskEntry};

use aig::{cone, Aig, Lit, NodeId};
use bitsim::{simulate, ConeSimulator, ConeTopology, Patterns, Sim};
use errmetrics::{error, BoundedScore, ErrorEval, MetricKind};
use lac::{DevView, Lac, ScoredLac};
use parkit::ThreadPool;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Wall-clock breakdown of one estimator's work, for round traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimatePhases {
    /// Time spent building missing transfer masks (cone resimulation).
    pub mask_ms: f64,
    /// Time spent scoring candidates against the masks.
    pub score_ms: f64,
}

/// Accounting of one [`BatchEstimator::score_topk`] call.
///
/// The exact/pruned split depends on how the worker threads interleave
/// (a chunk scored before the threshold tightens stays exact), so these
/// counters are diagnostics, not part of the bit-identity contract —
/// only the returned top set is schedule-independent.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopkStats {
    /// Candidates that passed the `gain > 0` filter (the population the
    /// dense path would have scored and retained).
    pub n_candidates: usize,
    /// Candidates scored to an exact `ΔE`.
    pub n_exact: usize,
    /// Candidates abandoned by the lower bound (`n_candidates - n_exact`).
    pub n_pruned: usize,
}

/// `f64` ordered by `total_cmp` for the threshold heap. `ΔE` values are
/// finite (never NaN), so this is the usual numeric order.
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The shared top-k pruning threshold: the k-th smallest exact `ΔE`
/// seen so far, published through a relaxed atomic so scoring workers
/// read it wait-free.
///
/// Soundness under races: stores happen only inside the heap lock, so
/// the published value is the k-th smallest of some subset of the exact
/// scores — always `>=` the final k-th smallest. A stale or not-yet-
/// tightened read can only make the bound test *harder* to pass, i.e.
/// prune less; it can never prune a candidate that belongs in the top
/// set. Candidates tied at the k-th value are safe too: pruning
/// requires a bound strictly above the threshold.
struct TopkThreshold {
    k: usize,
    /// `f64::to_bits` of the threshold; `+inf` until `k` exact scores
    /// exist. Monotone non-increasing.
    cached: AtomicU64,
    /// Max-heap of the k smallest `ΔE` values seen.
    heap: Mutex<BinaryHeap<OrdF64>>,
    /// Fault injection (tests only): publish a threshold *below* the
    /// smallest `ΔE` seen, which unsoundly prunes genuine top-set
    /// members — the fuzz oracle must catch this.
    unsound: bool,
}

impl TopkThreshold {
    fn new(k: usize, unsound: bool) -> Self {
        TopkThreshold {
            k,
            cached: AtomicU64::new(f64::INFINITY.to_bits()),
            heap: Mutex::new(BinaryHeap::new()),
            unsound,
        }
    }

    /// The current threshold: candidates whose `ΔE` lower bound is
    /// strictly above this cannot enter the top k.
    fn get(&self) -> f64 {
        f64::from_bits(self.cached.load(Ordering::Relaxed))
    }

    /// Feeds one exact `ΔE` into the running top-k.
    fn offer(&self, delta: f64) {
        if delta >= self.get() {
            // Cannot displace anything: the k-th smallest is already at
            // or below this value (or the fault already floored it).
            return;
        }
        let mut heap = self.heap.lock().expect("threshold heap poisoned");
        heap.push(OrdF64(delta));
        if heap.len() > self.k {
            heap.pop();
        }
        if self.unsound {
            let min = heap.iter().map(|v| v.0).fold(f64::INFINITY, f64::min);
            let broken = min - (min.abs() + 1e-9);
            self.cached.store(broken.to_bits(), Ordering::Relaxed);
        } else if heap.len() == self.k {
            let kth = heap.peek().expect("heap holds k values").0;
            self.cached.store(kth.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Mask storage: either private per-round scratch or a caller-owned
/// cross-round cache.
#[derive(Debug)]
enum CacheSlot<'a> {
    Owned(MaskCache),
    External(&'a mut MaskCache),
}

impl CacheSlot<'_> {
    fn get(&self) -> &MaskCache {
        match self {
            CacheSlot::Owned(c) => c,
            CacheSlot::External(c) => c,
        }
    }

    fn get_mut(&mut self) -> &mut MaskCache {
        match self {
            CacheSlot::Owned(c) => c,
            CacheSlot::External(c) => c,
        }
    }
}

/// Batch scorer for candidate LACs against one circuit snapshot.
///
/// Construct once per round (after re-simulating the current circuit),
/// then call [`BatchEstimator::score_all`].
#[derive(Debug)]
pub struct BatchEstimator<'a> {
    aig: &'a Aig,
    sim: &'a Sim,
    eval: &'a ErrorEval,
    topo: Arc<ConeTopology>,
    pool: &'static ThreadPool,
    cache: CacheSlot<'a>,
    current_error: f64,
    phases: EstimatePhases,
    unsound_bound: bool,
}

impl<'a> BatchEstimator<'a> {
    /// Creates an estimator for the circuit snapshot `(aig, sim, eval)`.
    ///
    /// `eval` must be anchored at the golden signatures and rebased at
    /// `aig`'s current output signatures under `sim`. Transfer masks are
    /// discarded when the estimator is dropped; use
    /// [`BatchEstimator::with_cache`] to keep them across rounds.
    ///
    /// # Panics
    ///
    /// Panics if `sim` does not match `aig`.
    pub fn new(aig: &'a Aig, sim: &'a Sim, eval: &'a ErrorEval) -> Self {
        let mut scratch = MaskCache::new();
        scratch.reset_for(aig, sim);
        Self::build(aig, sim, eval, CacheSlot::Owned(scratch))
    }

    /// Creates an estimator whose transfer masks live in `cache`,
    /// surviving across rounds.
    ///
    /// The cache is first rolled forward to this circuit revision:
    /// `remap` is the node remapping from the revision the cache last
    /// saw to `aig` (as returned by [`Aig::cleanup`] after applying the
    /// round's LACs), or `None` to start from scratch. Only masks whose
    /// fanout cone provably saw no change survive the roll, so cached
    /// scoring is bit-identical to [`BatchEstimator::new`].
    pub fn with_cache(
        aig: &'a Aig,
        sim: &'a Sim,
        eval: &'a ErrorEval,
        cache: &'a mut MaskCache,
        remap: Option<&[Option<Lit>]>,
    ) -> Self {
        let mut est = Self::build(aig, sim, eval, CacheSlot::External(cache));
        let topo = Arc::clone(&est.topo);
        est.cache.get_mut().roll(aig, sim, topo.fanouts(), remap);
        est
    }

    fn build(aig: &'a Aig, sim: &'a Sim, eval: &'a ErrorEval, cache: CacheSlot<'a>) -> Self {
        assert_eq!(sim.n_nodes(), aig.n_nodes(), "simulation is stale");
        BatchEstimator {
            aig,
            sim,
            eval,
            topo: ConeTopology::build(aig),
            pool: parkit::global(),
            cache,
            current_error: eval.current(),
            phases: EstimatePhases::default(),
            unsound_bound: false,
        }
    }

    /// Replaces the thread pool (default: [`parkit::global`]). Used by
    /// determinism tests to pin an exact thread count.
    pub fn use_pool(mut self, pool: &'static ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The error of the current circuit (the baseline for `ΔE`).
    pub fn current_error(&self) -> f64 {
        self.current_error
    }

    /// The wall-clock breakdown of the scoring calls so far.
    pub fn phases(&self) -> EstimatePhases {
        self.phases
    }

    /// Scores every candidate: estimated error increase `ΔE` plus the
    /// area gain (MFFC size minus new-function cost). Results are in
    /// input order and bit-identical at any thread count.
    pub fn score_all(&mut self, cands: &[Lac]) -> Vec<ScoredLac> {
        self.score_inner(cands, None)
    }

    /// Like [`BatchEstimator::score_all`], but reuses precomputed
    /// deviation masks (one view per candidate, e.g. from
    /// [`lac::CandidateStore::devs`] or [`lac::DevMask::view`]) instead
    /// of re-evaluating each candidate's substituted function against
    /// the base simulation. Results are bit-identical to
    /// [`BatchEstimator::score_all`].
    ///
    /// # Panics
    ///
    /// Panics if `devs.len() != cands.len()`.
    pub fn score_all_cached(&mut self, cands: &[Lac], devs: &[DevView<'_>]) -> Vec<ScoredLac> {
        assert_eq!(devs.len(), cands.len(), "one deviation mask per candidate");
        self.score_inner(cands, Some(devs))
    }

    /// Shared phase-1 prep: distinct targets (ascending) with their
    /// candidate slot map and MFFC sizes, plus any transfer masks
    /// missing from the cache built in parallel over target nodes. Each
    /// worker chunk owns a private cone simulator; the per-node result
    /// is independent of chunking.
    fn prepare_targets(&mut self, cands: &[Lac]) -> (Vec<NodeId>, HashMap<NodeId, u32>, Vec<i64>) {
        let stride = self.sim.stride();
        let pool = self.pool;
        let (aig, sim) = (self.aig, self.sim);

        let mut targets: Vec<NodeId> = cands.iter().map(|l| l.tn).collect();
        targets.sort_unstable();
        targets.dedup();
        let slot_of: HashMap<NodeId, u32> = targets
            .iter()
            .enumerate()
            .map(|(i, &tn)| (tn, i as u32))
            .collect();

        let topo = &self.topo;
        let mffcs: Vec<i64> =
            pool.par_map_collect(&targets, |_, &tn| cone::mffc_size(aig, topo.fanouts(), tn) as i64);

        let missing: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|&tn| self.cache.get().get(tn).is_none())
            .collect();
        self.cache
            .get_mut()
            .note_lookups(targets.len() - missing.len(), missing.len());
        let t_mask = Instant::now();
        if !missing.is_empty() {
            let chunk = missing.len().div_ceil(pool.threads() * 2).max(1);
            let computed: Vec<Vec<MaskEntry>> =
                pool.par_chunk_results(missing.len(), chunk, |_, range| {
                    let mut cs = ConeSimulator::with_topology(Arc::clone(topo), stride);
                    range
                        .map(|k| {
                            let tn = missing[k];
                            let forced: Vec<u64> = sim.sig(tn).iter().map(|w| !w).collect();
                            build_entry(&cs.output_flips(aig, sim, tn, &forced), stride)
                        })
                        .collect()
                });
            let store = self.cache.get_mut();
            let mut tns = missing.iter();
            for batch in computed {
                for e in batch {
                    store.insert(*tns.next().expect("one entry per missing target"), e);
                }
            }
        }
        self.phases.mask_ms += t_mask.elapsed().as_secs_f64() * 1e3;

        (targets, slot_of, mffcs)
    }

    fn score_inner(&mut self, cands: &[Lac], devs: Option<&[DevView<'_>]>) -> Vec<ScoredLac> {
        if cands.is_empty() {
            return Vec::new();
        }
        let (targets, slot_of, mffcs) = self.prepare_targets(cands);
        let stride = self.sim.stride();
        let pool = self.pool;
        let (sim, eval) = (self.sim, self.eval);
        let current = self.current_error;

        let store = self.cache.get();
        let dev_pool = self.cache.get().dev_pool();
        let chunk = cands.len().div_ceil(pool.threads() * 4).max(1);
        let t_score = Instant::now();

        // ER factors further: per target, precompute the union diff the
        // circuit would have if every pattern deviated (the transfer
        // masks folded into the current diffs once). Scoring a candidate
        // is then a two-way select per deviating word — no per-output
        // loop and no flip materialization at all.
        let scored: Vec<Vec<ScoredLac>> = if eval.kind() == MetricKind::Er {
            let e1s: Vec<Vec<u64>> = pool.par_map_collect(&targets, |_, &tn| {
                let entry = store.get(tn).expect("mask entry was just built");
                let mut e1 = Vec::new();
                eval.er_conditional_union(&entry.outs, &entry.masks, &mut e1);
                e1
            });
            pool.par_chunk_results(cands.len(), chunk, |_, range| match devs {
                // Cached masks feed the sparse ER fold directly — no
                // dense scatter, no scratch, no allocation at all.
                Some(ds) => range
                    .map(|ci| {
                        let lac = &cands[ci];
                        let slot = slot_of[&lac.tn] as usize;
                        let d = ds[ci];
                        let e_new = eval.er_with_deviation_sparse(d.words, d.bits, &e1s[slot]);
                        ScoredLac {
                            lac: *lac,
                            delta_e: e_new - current,
                            gain: mffcs[slot] - lac.new_node_cost() as i64,
                        }
                    })
                    .collect(),
                None => {
                    let mut buf = dev_pool.checkout();
                    buf.scratch.resize(stride, 0);
                    let mut out = Vec::with_capacity(range.len());
                    for ci in range {
                        let lac = &cands[ci];
                        let slot = slot_of[&lac.tn] as usize;
                        buf.words.clear();
                        fresh_dev_into(sim, lac, &mut buf.scratch, &mut buf.words);
                        let e_new = eval.er_with_deviation(&buf.words, &buf.scratch, &e1s[slot]);
                        out.push(ScoredLac {
                            lac: *lac,
                            delta_e: e_new - current,
                            gain: mffcs[slot] - lac.new_node_cost() as i64,
                        });
                    }
                    dev_pool.restore(buf);
                    out
                }
            })
        } else {
            // Phase 2 (general metrics): score candidates in parallel.
            // Flip rows are never materialized — the evaluator decodes
            // `dev & row` inline per output while folding, so the only
            // per-chunk scratch is the pooled dense deviation buffer.
            pool.par_chunk_results(cands.len(), chunk, |_, range| {
                let mut buf = dev_pool.checkout();
                // Cached masks scatter into the scratch (listed words
                // only, cleared again after scoring), so it must start
                // zeroed; fresh recomputation overwrites it anyway.
                buf.scratch.clear();
                buf.scratch.resize(stride, 0);
                let mut out = Vec::with_capacity(range.len());
                for ci in range {
                    let lac = &cands[ci];
                    let slot = slot_of[&lac.tn] as usize;
                    let entry = store.get(lac.tn).expect("mask entry was just built");
                    let e_new = match devs {
                        Some(ds) => {
                            let d = ds[ci];
                            for (k, &w) in d.words.iter().enumerate() {
                                buf.scratch[w as usize] = d.bits[k];
                            }
                            let e = eval.with_masked_rows(
                                d.words,
                                &buf.scratch,
                                &entry.outs,
                                &entry.masks,
                            );
                            for &w in d.words {
                                buf.scratch[w as usize] = 0;
                            }
                            e
                        }
                        None => {
                            buf.words.clear();
                            fresh_dev_into(sim, lac, &mut buf.scratch, &mut buf.words);
                            eval.with_masked_rows(
                                &buf.words,
                                &buf.scratch,
                                &entry.outs,
                                &entry.masks,
                            )
                        }
                    };
                    out.push(ScoredLac {
                        lac: *lac,
                        delta_e: e_new - current,
                        gain: mffcs[slot] - lac.new_node_cost() as i64,
                    });
                }
                dev_pool.restore(buf);
                out
            })
        };
        self.phases.score_ms += t_score.elapsed().as_secs_f64() * 1e3;
        scored.into_iter().flatten().collect()
    }

    /// Test-only: make [`BatchEstimator::score_topk`] publish an
    /// unsound (too low) pruning threshold, so the differential fuzz
    /// oracle can prove it detects a broken bound. Never enable outside
    /// fault-injection tests.
    #[doc(hidden)]
    pub fn inject_unsound_bound(&mut self, on: bool) {
        self.unsound_bound = on;
    }

    /// Scores only the candidates that can enter the top `k` by `ΔE`.
    ///
    /// Returns the exactly-scored candidates sorted by
    /// `(ΔE, gain desc, target node)` — the same tie-break the flow's
    /// top-set selection uses — plus pruning statistics. Candidates with
    /// `gain <= 0` are filtered out first (gain needs no error work),
    /// so the result compares against the dense
    /// [`BatchEstimator::score_all`] output after its own `gain > 0`
    /// retain.
    ///
    /// Contract: for any `k' <= k`, the first `t` entries are
    /// bit-identical (members, `ΔE` bits, order) to the dense sorted
    /// list, where `t` covers every candidate whose `ΔE` is `<=` the
    /// `k'`-th smallest — in particular all ties at the k-th value are
    /// scored exactly, so downstream `r_min` tie-counting sees them.
    /// This holds at any thread count and with fresh or cached
    /// deviation masks; only the exact/pruned *counters* are
    /// schedule-dependent.
    pub fn score_topk(&mut self, cands: &[Lac], k: usize) -> (Vec<ScoredLac>, TopkStats) {
        self.score_topk_inner(cands, None, k)
    }

    /// Like [`BatchEstimator::score_topk`], but reuses precomputed
    /// deviation masks (one view per candidate). Bit-identical to
    /// [`BatchEstimator::score_topk`].
    ///
    /// # Panics
    ///
    /// Panics if `devs.len() != cands.len()`.
    pub fn score_topk_cached(
        &mut self,
        cands: &[Lac],
        devs: &[DevView<'_>],
        k: usize,
    ) -> (Vec<ScoredLac>, TopkStats) {
        assert_eq!(devs.len(), cands.len(), "one deviation mask per candidate");
        self.score_topk_inner(cands, Some(devs), k)
    }

    fn score_topk_inner(
        &mut self,
        cands: &[Lac],
        devs: Option<&[DevView<'_>]>,
        k: usize,
    ) -> (Vec<ScoredLac>, TopkStats) {
        assert!(k >= 1, "top-k needs k >= 1");
        if cands.is_empty() {
            return (Vec::new(), TopkStats::default());
        }
        let (targets, slot_of, mffcs) = self.prepare_targets(cands);
        let stride = self.sim.stride();
        let pool = self.pool;
        let (sim, eval) = (self.sim, self.eval);
        let current = self.current_error;
        let kind = eval.kind();
        let store = self.cache.get();
        let dev_pool = self.cache.get().dev_pool();
        let t_score = Instant::now();

        // ER short-circuit: its sparse exact fold is cheaper than any
        // bound bookkeeping (the bound machinery used to *lose* to the
        // dense path here), so score every retained candidate exactly —
        // gain filter and deviation-mask computation fused into the
        // scoring pass, like the dense fast path — then keep only the
        // top k (plus ties) by a linear select. Bit-identity with the
        // dense sorted head is trivial: every returned `ΔE` is the
        // exact fold.
        if kind == MetricKind::Er {
            let e1s: Vec<Vec<u64>> = pool.par_map_collect(&targets, |_, &tn| {
                let entry = store.get(tn).expect("mask entry was just built");
                let mut e1 = Vec::new();
                eval.er_conditional_union(&entry.outs, &entry.masks, &mut e1);
                e1
            });
            let chunk = cands.len().div_ceil(pool.threads() * 4).max(1);
            let parts: Vec<Vec<(u32, f64)>> =
                pool.par_chunk_results(cands.len(), chunk, |_, range| match devs {
                    Some(ds) => range
                        .filter_map(|ci| {
                            let lac = &cands[ci];
                            let slot = slot_of[&lac.tn] as usize;
                            if mffcs[slot] - lac.new_node_cost() as i64 <= 0 {
                                return None;
                            }
                            let d = ds[ci];
                            let e_new = eval.er_with_deviation_sparse(d.words, d.bits, &e1s[slot]);
                            Some((ci as u32, e_new - current))
                        })
                        .collect(),
                    None => {
                        let mut buf = dev_pool.checkout();
                        buf.scratch.resize(stride, 0);
                        let mut out = Vec::with_capacity(range.len());
                        for ci in range {
                            let lac = &cands[ci];
                            let slot = slot_of[&lac.tn] as usize;
                            if mffcs[slot] - lac.new_node_cost() as i64 <= 0 {
                                continue;
                            }
                            buf.words.clear();
                            fresh_dev_into(sim, lac, &mut buf.scratch, &mut buf.words);
                            let e_new =
                                eval.er_with_deviation(&buf.words, &buf.scratch, &e1s[slot]);
                            out.push((ci as u32, e_new - current));
                        }
                        dev_pool.restore(buf);
                        out
                    }
                });
            let mut all: Vec<(u32, f64)> = parts.into_iter().flatten().collect();
            let n_candidates = all.len();
            if n_candidates == 0 {
                self.phases.score_ms += t_score.elapsed().as_secs_f64() * 1e3;
                return (Vec::new(), TopkStats::default());
            }
            // The k-th smallest `ΔE` in O(n); keeping everything `<=` it
            // preserves every tie at the k-th value, so the sorted head
            // matches the dense list for any k' <= k. (select_nth may
            // reorder `all`, which is harmless: the final sort's last
            // key is the input index carried in the tuple.)
            if all.len() > k {
                let (_, kth, _) =
                    all.select_nth_unstable_by(k - 1, |a, b| f64::total_cmp(&a.1, &b.1));
                let kth = kth.1;
                all.retain(|p| p.1 <= kth);
            }
            let mut picked: Vec<(u32, ScoredLac)> = all
                .into_iter()
                .map(|(ci, delta)| {
                    let lac = &cands[ci as usize];
                    let slot = slot_of[&lac.tn] as usize;
                    let scored = ScoredLac {
                        lac: *lac,
                        delta_e: delta,
                        gain: mffcs[slot] - lac.new_node_cost() as i64,
                    };
                    (ci, scored)
                })
                .collect();
            sort_flow_order(&mut picked);
            let n_exact = picked.len();
            let scored: Vec<ScoredLac> = picked.into_iter().map(|(_, s)| s).collect();
            self.phases.score_ms += t_score.elapsed().as_secs_f64() * 1e3;
            let stats = TopkStats {
                n_candidates,
                n_exact,
                n_pruned: n_candidates - n_exact,
            };
            return (scored, stats);
        }

        // Gain is pure MFFC bookkeeping — filter `gain <= 0` before any
        // error work so the threshold only ever competes over candidates
        // the flow could select.
        let order: Vec<u32> = (0..cands.len() as u32)
            .filter(|&ci| {
                let lac = &cands[ci as usize];
                mffcs[slot_of[&lac.tn] as usize] - lac.new_node_cost() as i64 > 0
            })
            .collect();
        let n_candidates = order.len();
        if n_candidates == 0 {
            self.phases.score_ms += t_score.elapsed().as_secs_f64() * 1e3;
            return (Vec::new(), TopkStats::default());
        }

        // Fresh path: deviation masks are computed up front (identical
        // bits to the inline recomputation) so the proxy can order
        // candidates before any scoring happens. Each worker chunk
        // appends into one pooled flat buffer — per-candidate Box
        // allocations were the old path's whole regression, so the pool
        // is the point here, not a nicety.
        let fresh_chunk = cands.len().div_ceil(pool.threads() * 4).max(1);
        let built: Option<Vec<DevBuf>> = match devs {
            Some(_) => None,
            None => Some(pool.par_chunk_results(cands.len(), fresh_chunk, |_, range| {
                let mut buf = dev_pool.checkout();
                let DevBuf {
                    words,
                    bits,
                    index,
                    pops,
                    scratch,
                    ..
                } = &mut buf;
                scratch.resize(stride, 0);
                for ci in range {
                    let lac = &cands[ci];
                    lac.signature_into(sim, scratch);
                    let base = sim.sig(lac.tn);
                    let start = words.len() as u32;
                    let mut pop = 0u64;
                    for (w, &s) in scratch.iter().enumerate() {
                        let d = s ^ base[w];
                        if d != 0 {
                            words.push(w as u32);
                            bits.push(d);
                            pop += d.count_ones() as u64;
                        }
                    }
                    index.push((start, words.len() as u32 - start));
                    pops.push(pop);
                }
                buf
            })),
        };
        let dev_of = |ci: usize| -> DevView<'_> {
            match devs {
                Some(ds) => ds[ci],
                None => {
                    let b = &built.as_ref().expect("fresh masks were built")[ci / fresh_chunk];
                    let (off, len) = b.index[ci % fresh_chunk];
                    let r = off as usize..(off + len) as usize;
                    DevView {
                        words: &b.words[r.clone()],
                        bits: &b.bits[r],
                    }
                }
            }
        };

        // Cheap proxy: fewer deviating patterns usually means a smaller
        // error increase, so scoring those first seeds the shared
        // threshold near its final value and later candidates prune
        // early. Stable sort keeps the schedule deterministic;
        // correctness never depends on this order.
        let mut order = order;
        order.sort_by_cached_key(|&ci| {
            let ci = ci as usize;
            match &built {
                // The fresh pre-pass already counted the bits.
                Some(bs) => bs[ci / fresh_chunk].pops[ci % fresh_chunk],
                None => dev_of(ci)
                    .bits
                    .iter()
                    .map(|b| b.count_ones() as u64)
                    .sum::<u64>(),
            }
        });

        let thr = TopkThreshold::new(k, self.unsound_bound);
        let chunk = order.len().div_ceil(pool.threads() * 8).max(1);
        let exact: Vec<Vec<(u32, f64)>> = pool.par_chunk_results(order.len(), chunk, |_, range| {
            let mut buf = dev_pool.checkout();
            buf.scratch.clear();
            buf.scratch.resize(stride, 0);
            buf.suffix.clear();
            let mut out = Vec::new();
            for oi in range {
                let ci = order[oi] as usize;
                let lac = &cands[ci];
                let d = dev_of(ci);
                let words = d.words;
                let res = match kind {
                    MetricKind::Wce => {
                        // WCE has no monotone per-pattern fold; score
                        // exactly (still benefits from the fused rows).
                        for (j, &w) in words.iter().enumerate() {
                            buf.scratch[w as usize] = d.bits[j];
                        }
                        let entry = store.get(lac.tn).expect("mask entry was just built");
                        let e_new =
                            eval.with_masked_rows(words, &buf.scratch, &entry.outs, &entry.masks);
                        for &w in words {
                            buf.scratch[w as usize] = 0;
                        }
                        BoundedScore::Exact(e_new)
                    }
                    _ => {
                        for (j, &w) in words.iter().enumerate() {
                            buf.scratch[w as usize] = d.bits[j];
                        }
                        let entry = store.get(lac.tn).expect("mask entry was just built");
                        eval.word_base_suffix(words, &mut buf.suffix);
                        let res = eval.masked_rows_bounded(
                            words,
                            &buf.scratch,
                            &entry.outs,
                            &entry.masks,
                            &buf.suffix,
                            current,
                            |lb| lb > thr.get(),
                        );
                        for &w in words {
                            buf.scratch[w as usize] = 0;
                        }
                        res
                    }
                };
                if let BoundedScore::Exact(e_new) = res {
                    if kind != MetricKind::Wce {
                        thr.offer(e_new - current);
                    }
                    out.push((ci as u32, e_new));
                }
            }
            dev_pool.restore(buf);
            out
        });

        if let Some(bs) = built {
            for b in bs {
                dev_pool.restore(b);
            }
        }

        let mut picked: Vec<(u32, ScoredLac)> = exact
            .into_iter()
            .flatten()
            .map(|(ci, e_new)| {
                let lac = &cands[ci as usize];
                let slot = slot_of[&lac.tn] as usize;
                let scored = ScoredLac {
                    lac: *lac,
                    delta_e: e_new - current,
                    gain: mffcs[slot] - lac.new_node_cost() as i64,
                };
                (ci, scored)
            })
            .collect();
        sort_flow_order(&mut picked);
        let n_exact = picked.len();
        let scored: Vec<ScoredLac> = picked.into_iter().map(|(_, s)| s).collect();
        self.phases.score_ms += t_score.elapsed().as_secs_f64() * 1e3;
        let stats = TopkStats {
            n_candidates,
            n_exact,
            n_pruned: n_candidates - n_exact,
        };
        (scored, stats)
    }
}

/// The flow's tie-break `(ΔE, gain desc, target node)`, plus input
/// index as the final key so the order is total even between identical
/// LACs.
fn sort_flow_order(picked: &mut [(u32, ScoredLac)]) {
    picked.sort_by(|(ia, a), (ib, b)| {
        a.delta_e
            .partial_cmp(&b.delta_e)
            .expect("ΔE is never NaN")
            .then(b.gain.cmp(&a.gain))
            .then(a.lac.tn.cmp(&b.lac.tn))
            .then(ia.cmp(ib))
    });
}

/// Computes `lac`'s deviation mask into `dense` (a full overwrite: the
/// substituted function's signature XOR the target's), appending the
/// nonzero word indices to `words`. Bit-identical to [`lac::DevMask::of`].
fn fresh_dev_into(sim: &Sim, lac: &Lac, dense: &mut [u64], words: &mut Vec<u32>) {
    lac.signature_into(sim, dense);
    let base = sim.sig(lac.tn);
    for (w, d) in dense.iter_mut().enumerate() {
        *d ^= base[w]; // deviation mask, reusing the buffer
        if *d != 0 {
            words.push(w as u32);
        }
    }
}

/// Packs per-output flip rows into a [`MaskEntry`], keeping only the
/// outputs the node can actually influence.
fn build_entry(rows: &[Vec<u64>], stride: usize) -> MaskEntry {
    let outs: Vec<u32> = rows
        .iter()
        .enumerate()
        .filter(|(_, row)| row.iter().any(|&w| w != 0))
        .map(|(o, _)| o as u32)
        .collect();
    let fp_len = MaskEntry::footprint_len(stride);
    let mut masks = Vec::with_capacity(outs.len() * stride);
    let mut row_words = vec![0u64; outs.len() * fp_len];
    for (k, &o) in outs.iter().enumerate() {
        let row = &rows[o as usize];
        masks.extend_from_slice(row);
        for (w, &word) in row.iter().enumerate() {
            if word != 0 {
                row_words[k * fp_len + (w >> 6)] |= 1 << (w & 63);
            }
        }
    }
    MaskEntry {
        outs: outs.into_boxed_slice(),
        masks: masks.into_boxed_slice(),
        row_words: row_words.into_boxed_slice(),
    }
}

/// Reference estimator: clone the circuit, apply the LAC, re-simulate
/// everything, and measure the error against the golden signatures.
///
/// Slow (`O(circuit)` per candidate); used by tests and the estimator
/// ablation bench.
///
/// # Panics
///
/// Panics if the LAC does not apply cleanly.
pub fn exact_on_sample(
    aig: &Aig,
    golden: &[Vec<u64>],
    kind: MetricKind,
    pats: &Patterns,
    the_lac: &Lac,
) -> f64 {
    let mut copy = aig.clone();
    lac::apply(&mut copy, the_lac).expect("candidate must apply cleanly");
    let sim = simulate(&copy, pats);
    let sigs = sim.output_sigs(&copy);
    error(kind, golden, &sigs, pats.n_patterns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac::{generate_candidates, CandidateConfig, DevMask};

    #[test]
    fn batch_estimates_are_exact_on_sample() {
        let g = benchgen::adders::rca(4);
        let pats = Patterns::exhaustive(8);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        for kind in [MetricKind::Er, MetricKind::Nmed, MetricKind::Mred] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
            let mut est = BatchEstimator::new(&g, &sim, &eval);
            let scored = est.score_all(&cands);
            for s in &scored {
                let exact = exact_on_sample(&g, &golden, kind, &pats, &s.lac);
                let predicted = est.current_error() + s.delta_e;
                assert!(
                    (predicted - exact).abs() < 1e-12,
                    "{kind} {}: predicted {predicted}, exact {exact}",
                    s.lac
                );
            }
        }
    }

    #[test]
    fn estimates_on_an_already_approximate_circuit() {
        // Apply one LAC, then verify estimation is still exact relative
        // to the golden circuit.
        let golden_aig = benchgen::multipliers::array_multiplier(3);
        let pats = Patterns::exhaustive(6);
        let golden = simulate(&golden_aig, &pats).output_sigs(&golden_aig);

        let mut approx = golden_aig.clone();
        let sim0 = simulate(&approx, &pats);
        let cands0 = generate_candidates(&approx, &sim0, &CandidateConfig::default());
        lac::apply(&mut approx, &cands0[1]).unwrap();
        approx.cleanup().unwrap();

        let sim = simulate(&approx, &pats);
        let mut eval = ErrorEval::new(MetricKind::Nmed, &golden, pats.n_patterns());
        eval.rebase(&sim.output_sigs(&approx));
        let cands = generate_candidates(&approx, &sim, &CandidateConfig::default());
        let mut est = BatchEstimator::new(&approx, &sim, &eval);
        let scored = est.score_all(&cands);
        for s in scored.iter().take(40) {
            let exact = exact_on_sample(&approx, &golden, MetricKind::Nmed, &pats, &s.lac);
            let predicted = est.current_error() + s.delta_e;
            assert!(
                (predicted - exact).abs() < 1e-12,
                "{}: predicted {predicted}, exact {exact}",
                s.lac
            );
        }
    }

    #[test]
    fn cached_deviations_match_fresh_scoring() {
        // score_all_cached with precomputed sparse deviation masks must
        // be bit-identical to score_all recomputing them, on both the
        // ER fast path and the general metric path.
        let g = benchgen::adders::rca(6);
        let pats = Patterns::random(12, 320, 11);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
        let mut scratch = vec![0u64; sim.stride()];
        let devs: Vec<DevMask> = cands
            .iter()
            .map(|l| DevMask::of(&sim, l, &mut scratch))
            .collect();
        let dev_views: Vec<DevView> = devs.iter().map(|d| d.view()).collect();
        for kind in [MetricKind::Er, MetricKind::Nmed] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let fresh = BatchEstimator::new(&g, &sim, &eval).score_all(&cands);
            let cached =
                BatchEstimator::new(&g, &sim, &eval).score_all_cached(&cands, &dev_views);
            assert_eq!(fresh.len(), cached.len());
            for (f, c) in fresh.iter().zip(&cached) {
                assert_eq!(f.lac, c.lac);
                assert_eq!(f.gain, c.gain);
                assert_eq!(
                    f.delta_e.to_bits(),
                    c.delta_e.to_bits(),
                    "{kind} {}: ΔE drifted",
                    f.lac
                );
            }
        }
    }

    #[test]
    fn gain_reflects_mffc() {
        let mut g = aig::Aig::new("t", 3);
        let (a, b, c) = (g.pi(0), g.pi(1), g.pi(2));
        let ab = g.and(a, b);
        let y = g.and(ab, c);
        g.add_output(y, "y");
        let pats = Patterns::exhaustive(3);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let mut eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval.rebase(&golden);
        let mut est = BatchEstimator::new(&g, &sim, &eval);
        let scored = est.score_all(&[
            Lac::new(y.node(), lac::LacKind::Constant(false)),
            Lac::new(ab.node(), lac::LacKind::Constant(false)),
        ]);
        // Removing the top gate frees both gates; removing ab frees one.
        assert_eq!(scored[0].gain, 2);
        assert_eq!(scored[1].gain, 1);
    }

    #[test]
    fn er_and_general_paths_agree_on_gain() {
        // The ER fast path and the general metric path compute gain
        // from the same hoisted slot lookup; for an identical candidate
        // list they must report identical gains per index.
        let g = benchgen::adders::rca(5);
        let pats = Patterns::random(10, 192, 3);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
        let mut er_eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        er_eval.rebase(&golden);
        let mut nmed_eval = ErrorEval::new(MetricKind::Nmed, &golden, pats.n_patterns());
        nmed_eval.rebase(&golden);
        let er = BatchEstimator::new(&g, &sim, &er_eval).score_all(&cands);
        let general = BatchEstimator::new(&g, &sim, &nmed_eval).score_all(&cands);
        assert_eq!(er.len(), general.len());
        for (a, b) in er.iter().zip(&general) {
            assert_eq!(a.lac, b.lac);
            assert_eq!(a.gain, b.gain, "{}: gain differs between metric paths", a.lac);
        }
    }

    /// Dense reference for the top-k contract: `score_all`, keep
    /// `gain > 0`, stable-sort by the flow's `(ΔE, gain, tn)` key.
    fn dense_sorted(mut scored: Vec<ScoredLac>) -> Vec<ScoredLac> {
        scored.retain(|s| s.gain > 0);
        scored.sort_by(|a, b| {
            a.delta_e
                .partial_cmp(&b.delta_e)
                .unwrap()
                .then(b.gain.cmp(&a.gain))
                .then(a.lac.tn.cmp(&b.lac.tn))
        });
        scored
    }

    /// Everything at or below the k-th smallest `ΔE` must come back
    /// exactly, bit-identical and in dense order, as the head of the
    /// top-k result.
    fn assert_topk_prefix(dense: &[ScoredLac], topk: &[ScoredLac], k: usize) {
        assert!(topk.len() <= dense.len());
        if dense.is_empty() {
            assert!(topk.is_empty());
            return;
        }
        let kth = dense[k.min(dense.len()) - 1].delta_e;
        let t = dense.iter().take_while(|s| s.delta_e <= kth).count();
        assert!(topk.len() >= t, "returned {} of {t} required", topk.len());
        for (d, p) in dense[..t].iter().zip(&topk[..t]) {
            assert_eq!(d.lac, p.lac);
            assert_eq!(d.gain, p.gain);
            assert_eq!(d.delta_e.to_bits(), p.delta_e.to_bits(), "{}: ΔE drifted", d.lac);
        }
    }

    #[test]
    fn topk_matches_dense_topset() {
        let g = benchgen::adders::rca(6);
        let pats = Patterns::random(12, 320, 11);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
        let mut scratch = vec![0u64; sim.stride()];
        let devs: Vec<DevMask> = cands
            .iter()
            .map(|l| DevMask::of(&sim, l, &mut scratch))
            .collect();
        let dev_views: Vec<DevView> = devs.iter().map(|d| d.view()).collect();
        let pools: Vec<&'static ThreadPool> = [1, 2, 8]
            .iter()
            .map(|&t| &*Box::leak(Box::new(ThreadPool::new(t))))
            .collect();
        for kind in [
            MetricKind::Er,
            MetricKind::Nmed,
            MetricKind::Mred,
            MetricKind::Wce,
        ] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let dense = dense_sorted(BatchEstimator::new(&g, &sim, &eval).score_all(&cands));
            assert!(!dense.is_empty());
            for &k in &[1usize, 3, 8, 64, dense.len() + 100] {
                for &pool in &pools {
                    let (fresh, fs) = BatchEstimator::new(&g, &sim, &eval)
                        .use_pool(pool)
                        .score_topk(&cands, k);
                    assert_eq!(fs.n_candidates, dense.len(), "{kind}: population differs");
                    assert_eq!(fs.n_exact + fs.n_pruned, fs.n_candidates);
                    assert_topk_prefix(&dense, &fresh, k);
                    let (cached, cs) = BatchEstimator::new(&g, &sim, &eval)
                        .use_pool(pool)
                        .score_topk_cached(&cands, &dev_views, k);
                    assert_eq!(cs.n_candidates, dense.len());
                    assert_topk_prefix(&dense, &cached, k);
                }
            }
        }
    }

    #[test]
    fn cached_scores_match_fresh_after_a_round() {
        // Score, apply the best safe LAC, clean up, then score the new
        // circuit twice: once through the rolled cache and once from
        // scratch. The lists must be bit-identical and the cache must
        // actually carry entries forward.
        let g0 = benchgen::adders::rca(8);
        let pats = Patterns::random(16, 256, 7);
        let sim0 = simulate(&g0, &pats);
        let golden = sim0.output_sigs(&g0);
        let mut eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval.rebase(&golden);

        let mut cache = MaskCache::new();
        let cands0 = generate_candidates(&g0, &sim0, &CandidateConfig::default());
        let mut est = BatchEstimator::with_cache(&g0, &sim0, &eval, &mut cache, None);
        let scored0 = est.score_all(&cands0);

        // Avoid targets that drive an output: replacing an output
        // driver changes the output literal, which (by design) flushes
        // the mask cache instead of rolling it.
        let driven: std::collections::HashSet<_> =
            g0.outputs().iter().map(|o| o.lit.node()).collect();
        let pick = scored0
            .iter()
            .filter(|s| s.delta_e <= 0.02 && !driven.contains(&s.lac.tn))
            .max_by_key(|s| s.gain)
            .expect("some candidate fits the bound");
        let mut g1 = g0.clone();
        lac::apply(&mut g1, &pick.lac).unwrap();
        let remap = g1.cleanup().unwrap();

        let sim1 = simulate(&g1, &pats);
        let mut eval1 = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval1.rebase(&sim1.output_sigs(&g1));
        let cands1 = generate_candidates(&g1, &sim1, &CandidateConfig::default());

        let mut cached_est =
            BatchEstimator::with_cache(&g1, &sim1, &eval1, &mut cache, Some(&remap));
        let cached = cached_est.score_all(&cands1);
        drop(cached_est);
        let stats = cache.stats();
        assert!(stats.carried > 0, "roll carried no masks: {stats:?}");
        assert!(stats.hits > 0, "no cache hits: {stats:?}");

        let mut fresh_est = BatchEstimator::new(&g1, &sim1, &eval1);
        let fresh = fresh_est.score_all(&cands1);
        assert_eq!(cached.len(), fresh.len());
        for (c, f) in cached.iter().zip(&fresh) {
            assert_eq!(c.lac, f.lac);
            assert_eq!(c.gain, f.gain);
            assert_eq!(
                c.delta_e.to_bits(),
                f.delta_e.to_bits(),
                "{}: cached {} vs fresh {}",
                c.lac,
                c.delta_e,
                f.delta_e
            );
        }
    }
}
