//! Batch error-increase estimation for LAC candidates.
//!
//! The expensive step of an iterative ALS flow is scoring every candidate
//! LAC: how much would the circuit error grow if this change were
//! applied? This crate implements the change-propagation scheme used by
//! SEALS/VECBEE-class estimators:
//!
//! 1. per target node `n`, one fanout-cone re-simulation with `n`
//!    complemented yields the *transfer masks* `M(n, o)` — the patterns
//!    where flipping `n` flips output `o`;
//! 2. a candidate at `n` with deviation mask `D` (patterns where the
//!    substituted function differs from `n`) then flips output `o`
//!    exactly on `D & M(n, o)`, because a single-node change propagates
//!    deterministically per pattern;
//! 3. the incremental [`errmetrics::ErrorEval`] turns those flip masks
//!    into the candidate's error in time proportional to the flipped
//!    patterns.
//!
//! Step 2 is *exact on the sample* for a single LAC — the estimation gap
//! the AccALS paper reasons about appears only when summing the `ΔE` of
//! several LACs applied together (its Eq. (1)). The property tests check
//! this exactness against [`exact_on_sample`], the slow
//! clone-apply-resimulate reference.

use aig::{cone, Aig, Fanouts, NodeId};
use bitsim::{simulate, ConeSimulator, Patterns, Sim};
use errmetrics::{error, ErrorEval, MetricKind};
use lac::{Lac, ScoredLac};
use std::collections::HashMap;

/// Batch scorer for candidate LACs against one circuit snapshot.
///
/// Construct once per round (after re-simulating the current circuit),
/// then call [`BatchEstimator::score_all`].
#[derive(Debug)]
pub struct BatchEstimator<'a> {
    aig: &'a Aig,
    sim: &'a Sim,
    eval: &'a ErrorEval,
    cone_sim: ConeSimulator,
    current_error: f64,
}

impl<'a> BatchEstimator<'a> {
    /// Creates an estimator for the circuit snapshot `(aig, sim, eval)`.
    ///
    /// `eval` must be anchored at the golden signatures and rebased at
    /// `aig`'s current output signatures under `sim`.
    ///
    /// # Panics
    ///
    /// Panics if `sim` does not match `aig`.
    pub fn new(aig: &'a Aig, sim: &'a Sim, eval: &'a ErrorEval) -> Self {
        assert_eq!(sim.n_nodes(), aig.n_nodes(), "simulation is stale");
        BatchEstimator {
            aig,
            sim,
            eval,
            cone_sim: ConeSimulator::new(aig, sim.stride()),
            current_error: eval.current(),
        }
    }

    /// The error of the current circuit (the baseline for `ΔE`).
    pub fn current_error(&self) -> f64 {
        self.current_error
    }

    /// Scores every candidate: estimated error increase `ΔE` plus the
    /// area gain (MFFC size minus new-function cost). Results are in
    /// input order.
    pub fn score_all(&mut self, cands: &[Lac]) -> Vec<ScoredLac> {
        let stride = self.sim.stride();
        let n_outputs = self.aig.n_pos();
        // Group candidate indices by target node so each node's transfer
        // masks are computed once.
        let mut by_tn: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, l) in cands.iter().enumerate() {
            by_tn.entry(l.tn).or_default().push(i);
        }
        let mut order: Vec<NodeId> = by_tn.keys().copied().collect();
        order.sort_unstable();

        let fanouts = Fanouts::build(self.aig);
        let mut results: Vec<Option<ScoredLac>> = vec![None; cands.len()];
        let mut dev = vec![0u64; stride];
        let mut cand_sig = vec![0u64; stride];
        let mut flips = vec![vec![0u64; stride]; n_outputs];

        for tn in order {
            let forced: Vec<u64> = self.sim.sig(tn).iter().map(|w| !w).collect();
            let masks = self.cone_sim.output_flips(self.aig, self.sim, tn, &forced);
            let mffc = cone::mffc_size(self.aig, &fanouts, tn) as i64;
            for &ci in &by_tn[&tn] {
                let lac = &cands[ci];
                lac.signature_into(self.sim, &mut cand_sig);
                let base = self.sim.sig(tn);
                for w in 0..stride {
                    dev[w] = base[w] ^ cand_sig[w];
                }
                for (o, flip) in flips.iter_mut().enumerate() {
                    for w in 0..stride {
                        flip[w] = dev[w] & masks[o][w];
                    }
                }
                let e_new = self.eval.with_flips(&flips);
                results[ci] = Some(ScoredLac {
                    lac: *lac,
                    delta_e: e_new - self.current_error,
                    gain: mffc - lac.new_node_cost() as i64,
                });
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every candidate scored"))
            .collect()
    }
}

/// Reference estimator: clone the circuit, apply the LAC, re-simulate
/// everything, and measure the error against the golden signatures.
///
/// Slow (`O(circuit)` per candidate); used by tests and the estimator
/// ablation bench.
///
/// # Panics
///
/// Panics if the LAC does not apply cleanly.
pub fn exact_on_sample(
    aig: &Aig,
    golden: &[Vec<u64>],
    kind: MetricKind,
    pats: &Patterns,
    the_lac: &Lac,
) -> f64 {
    let mut copy = aig.clone();
    lac::apply(&mut copy, the_lac).expect("candidate must apply cleanly");
    let sim = simulate(&copy, pats);
    let sigs = sim.output_sigs(&copy);
    error(kind, golden, &sigs, pats.n_patterns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac::{generate_candidates, CandidateConfig};

    #[test]
    fn batch_estimates_are_exact_on_sample() {
        let g = benchgen::adders::rca(4);
        let pats = Patterns::exhaustive(8);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        for kind in [MetricKind::Er, MetricKind::Nmed, MetricKind::Mred] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
            let mut est = BatchEstimator::new(&g, &sim, &eval);
            let scored = est.score_all(&cands);
            for s in &scored {
                let exact = exact_on_sample(&g, &golden, kind, &pats, &s.lac);
                let predicted = est.current_error() + s.delta_e;
                assert!(
                    (predicted - exact).abs() < 1e-12,
                    "{kind} {}: predicted {predicted}, exact {exact}",
                    s.lac
                );
            }
        }
    }

    #[test]
    fn estimates_on_an_already_approximate_circuit() {
        // Apply one LAC, then verify estimation is still exact relative
        // to the golden circuit.
        let golden_aig = benchgen::multipliers::array_multiplier(3);
        let pats = Patterns::exhaustive(6);
        let golden = simulate(&golden_aig, &pats).output_sigs(&golden_aig);

        let mut approx = golden_aig.clone();
        let sim0 = simulate(&approx, &pats);
        let cands0 = generate_candidates(&approx, &sim0, &CandidateConfig::default());
        lac::apply(&mut approx, &cands0[1]).unwrap();
        approx.cleanup().unwrap();

        let sim = simulate(&approx, &pats);
        let mut eval = ErrorEval::new(MetricKind::Nmed, &golden, pats.n_patterns());
        eval.rebase(&sim.output_sigs(&approx));
        let cands = generate_candidates(&approx, &sim, &CandidateConfig::default());
        let mut est = BatchEstimator::new(&approx, &sim, &eval);
        let scored = est.score_all(&cands);
        for s in scored.iter().take(40) {
            let exact = exact_on_sample(&approx, &golden, MetricKind::Nmed, &pats, &s.lac);
            let predicted = est.current_error() + s.delta_e;
            assert!(
                (predicted - exact).abs() < 1e-12,
                "{}: predicted {predicted}, exact {exact}",
                s.lac
            );
        }
    }

    #[test]
    fn gain_reflects_mffc() {
        let mut g = aig::Aig::new("t", 3);
        let (a, b, c) = (g.pi(0), g.pi(1), g.pi(2));
        let ab = g.and(a, b);
        let y = g.and(ab, c);
        g.add_output(y, "y");
        let pats = Patterns::exhaustive(3);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let mut eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval.rebase(&golden);
        let mut est = BatchEstimator::new(&g, &sim, &eval);
        let scored = est.score_all(&[
            Lac::new(y.node(), lac::LacKind::Constant(false)),
            Lac::new(ab.node(), lac::LacKind::Constant(false)),
        ]);
        // Removing the top gate frees both gates; removing ab frees one.
        assert_eq!(scored[0].gain, 2);
        assert_eq!(scored[1].gain, 1);
    }
}
