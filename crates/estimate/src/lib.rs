//! Batch error-increase estimation for LAC candidates.
//!
//! The expensive step of an iterative ALS flow is scoring every candidate
//! LAC: how much would the circuit error grow if this change were
//! applied? This crate implements the change-propagation scheme used by
//! SEALS/VECBEE-class estimators:
//!
//! 1. per target node `n`, one fanout-cone re-simulation with `n`
//!    complemented yields the *transfer masks* `M(n, o)` — the patterns
//!    where flipping `n` flips output `o`;
//! 2. a candidate at `n` with deviation mask `D` (patterns where the
//!    substituted function differs from `n`) then flips output `o`
//!    exactly on `D & M(n, o)`, because a single-node change propagates
//!    deterministically per pattern;
//! 3. the incremental [`errmetrics::ErrorEval`] turns those flip masks
//!    into the candidate's error in time proportional to the flipped
//!    patterns.
//!
//! Step 2 is *exact on the sample* for a single LAC — the estimation gap
//! the AccALS paper reasons about appears only when summing the `ΔE` of
//! several LACs applied together (its Eq. (1)). The property tests check
//! this exactness against [`exact_on_sample`], the slow
//! clone-apply-resimulate reference.
//!
//! Both phases run on a [`parkit::ThreadPool`]: mask construction is
//! parallel over target nodes (each worker chunk owns a private
//! [`ConeSimulator`] over a shared [`ConeTopology`]), and scoring is
//! parallel over candidates. Per-candidate work touches only the words
//! where the deviation mask is nonzero, via
//! [`errmetrics::ErrorEval::with_flips_words`]. Every per-candidate
//! value is computed independently and written to its input slot, so
//! results are bit-identical at any thread count. Transfer masks can be
//! reused across synthesis rounds through a [`MaskCache`] — see
//! [`BatchEstimator::with_cache`].

mod cache;

pub use cache::{CacheStats, MaskCache, MaskEntry};

use aig::{cone, Aig, Lit, NodeId};
use bitsim::{simulate, ConeSimulator, ConeTopology, Patterns, Sim};
use errmetrics::{error, ErrorEval, MetricKind};
use lac::{DevMask, Lac, ScoredLac};
use parkit::ThreadPool;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock breakdown of one estimator's work, for round traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimatePhases {
    /// Time spent building missing transfer masks (cone resimulation).
    pub mask_ms: f64,
    /// Time spent scoring candidates against the masks.
    pub score_ms: f64,
}

/// Mask storage: either private per-round scratch or a caller-owned
/// cross-round cache.
#[derive(Debug)]
enum CacheSlot<'a> {
    Owned(MaskCache),
    External(&'a mut MaskCache),
}

impl CacheSlot<'_> {
    fn get(&self) -> &MaskCache {
        match self {
            CacheSlot::Owned(c) => c,
            CacheSlot::External(c) => c,
        }
    }

    fn get_mut(&mut self) -> &mut MaskCache {
        match self {
            CacheSlot::Owned(c) => c,
            CacheSlot::External(c) => c,
        }
    }
}

/// Batch scorer for candidate LACs against one circuit snapshot.
///
/// Construct once per round (after re-simulating the current circuit),
/// then call [`BatchEstimator::score_all`].
#[derive(Debug)]
pub struct BatchEstimator<'a> {
    aig: &'a Aig,
    sim: &'a Sim,
    eval: &'a ErrorEval,
    topo: Arc<ConeTopology>,
    pool: &'static ThreadPool,
    cache: CacheSlot<'a>,
    current_error: f64,
    phases: EstimatePhases,
}

impl<'a> BatchEstimator<'a> {
    /// Creates an estimator for the circuit snapshot `(aig, sim, eval)`.
    ///
    /// `eval` must be anchored at the golden signatures and rebased at
    /// `aig`'s current output signatures under `sim`. Transfer masks are
    /// discarded when the estimator is dropped; use
    /// [`BatchEstimator::with_cache`] to keep them across rounds.
    ///
    /// # Panics
    ///
    /// Panics if `sim` does not match `aig`.
    pub fn new(aig: &'a Aig, sim: &'a Sim, eval: &'a ErrorEval) -> Self {
        let mut scratch = MaskCache::new();
        scratch.reset_for(aig, sim);
        Self::build(aig, sim, eval, CacheSlot::Owned(scratch))
    }

    /// Creates an estimator whose transfer masks live in `cache`,
    /// surviving across rounds.
    ///
    /// The cache is first rolled forward to this circuit revision:
    /// `remap` is the node remapping from the revision the cache last
    /// saw to `aig` (as returned by [`Aig::cleanup`] after applying the
    /// round's LACs), or `None` to start from scratch. Only masks whose
    /// fanout cone provably saw no change survive the roll, so cached
    /// scoring is bit-identical to [`BatchEstimator::new`].
    pub fn with_cache(
        aig: &'a Aig,
        sim: &'a Sim,
        eval: &'a ErrorEval,
        cache: &'a mut MaskCache,
        remap: Option<&[Option<Lit>]>,
    ) -> Self {
        let mut est = Self::build(aig, sim, eval, CacheSlot::External(cache));
        let topo = Arc::clone(&est.topo);
        est.cache.get_mut().roll(aig, sim, topo.fanouts(), remap);
        est
    }

    fn build(aig: &'a Aig, sim: &'a Sim, eval: &'a ErrorEval, cache: CacheSlot<'a>) -> Self {
        assert_eq!(sim.n_nodes(), aig.n_nodes(), "simulation is stale");
        BatchEstimator {
            aig,
            sim,
            eval,
            topo: ConeTopology::build(aig),
            pool: parkit::global(),
            cache,
            current_error: eval.current(),
            phases: EstimatePhases::default(),
        }
    }

    /// Replaces the thread pool (default: [`parkit::global`]). Used by
    /// determinism tests to pin an exact thread count.
    pub fn use_pool(mut self, pool: &'static ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The error of the current circuit (the baseline for `ΔE`).
    pub fn current_error(&self) -> f64 {
        self.current_error
    }

    /// The wall-clock breakdown of the scoring calls so far.
    pub fn phases(&self) -> EstimatePhases {
        self.phases
    }

    /// Scores every candidate: estimated error increase `ΔE` plus the
    /// area gain (MFFC size minus new-function cost). Results are in
    /// input order and bit-identical at any thread count.
    pub fn score_all(&mut self, cands: &[Lac]) -> Vec<ScoredLac> {
        self.score_inner(cands, None)
    }

    /// Like [`BatchEstimator::score_all`], but reuses precomputed
    /// deviation masks (one per candidate, e.g. from
    /// [`lac::CandidateStore::devs`]) instead of re-evaluating each
    /// candidate's substituted function against the base simulation.
    /// Results are bit-identical to [`BatchEstimator::score_all`].
    ///
    /// # Panics
    ///
    /// Panics if `devs.len() != cands.len()`.
    pub fn score_all_cached(&mut self, cands: &[Lac], devs: &[&DevMask]) -> Vec<ScoredLac> {
        assert_eq!(devs.len(), cands.len(), "one deviation mask per candidate");
        self.score_inner(cands, Some(devs))
    }

    fn score_inner(&mut self, cands: &[Lac], devs: Option<&[&DevMask]>) -> Vec<ScoredLac> {
        if cands.is_empty() {
            return Vec::new();
        }
        let stride = self.sim.stride();
        let n_outputs = self.aig.n_pos();
        let pool = self.pool;
        let (aig, sim, eval) = (self.aig, self.sim, self.eval);
        let current = self.current_error;

        // Distinct target nodes, ascending; each candidate indexes in.
        let mut targets: Vec<NodeId> = cands.iter().map(|l| l.tn).collect();
        targets.sort_unstable();
        targets.dedup();
        let slot_of: HashMap<NodeId, u32> = targets
            .iter()
            .enumerate()
            .map(|(i, &tn)| (tn, i as u32))
            .collect();

        let topo = &self.topo;
        let mffcs: Vec<i64> =
            pool.par_map_collect(&targets, |_, &tn| cone::mffc_size(aig, topo.fanouts(), tn) as i64);

        // Phase 1: compute transfer masks missing from the cache, in
        // parallel over target nodes. Each chunk owns a private cone
        // simulator; the per-node result is independent of chunking.
        let missing: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|&tn| self.cache.get().get(tn).is_none())
            .collect();
        self.cache
            .get_mut()
            .note_lookups(targets.len() - missing.len(), missing.len());
        let t_mask = Instant::now();
        if !missing.is_empty() {
            let chunk = missing.len().div_ceil(pool.threads() * 2).max(1);
            let computed: Vec<Vec<MaskEntry>> =
                pool.par_chunk_results(missing.len(), chunk, |_, range| {
                    let mut cs = ConeSimulator::with_topology(Arc::clone(topo), stride);
                    range
                        .map(|k| {
                            let tn = missing[k];
                            let forced: Vec<u64> = sim.sig(tn).iter().map(|w| !w).collect();
                            build_entry(&cs.output_flips(aig, sim, tn, &forced), stride)
                        })
                        .collect()
                });
            let store = self.cache.get_mut();
            let mut tns = missing.iter();
            for batch in computed {
                for e in batch {
                    store.insert(*tns.next().expect("one entry per missing target"), e);
                }
            }
        }

        self.phases.mask_ms += t_mask.elapsed().as_secs_f64() * 1e3;

        let store = self.cache.get();
        let chunk = cands.len().div_ceil(pool.threads() * 4).max(1);
        let t_score = Instant::now();

        // Per-candidate deviation: either scattered from a cached
        // sparse mask into the dense scratch (listed words only, cleared
        // again by the caller) or recomputed from the substituted
        // function (which overwrites the whole scratch).
        let load_dev = |ci: usize, dense: &mut [u64], words: &mut Vec<u32>| {
            words.clear();
            match devs {
                Some(ds) => {
                    let d = ds[ci];
                    for (k, &w) in d.words.iter().enumerate() {
                        dense[w as usize] = d.bits[k];
                        words.push(w);
                    }
                }
                None => {
                    let lac = &cands[ci];
                    lac.signature_into(sim, dense);
                    let base = sim.sig(lac.tn);
                    for (w, d) in dense.iter_mut().enumerate() {
                        *d ^= base[w]; // deviation mask, reusing the buffer
                        if *d != 0 {
                            words.push(w as u32);
                        }
                    }
                }
            }
        };
        // With cached deviations only the listed words were written;
        // clear exactly those so the scratch stays zero between
        // candidates. Fresh recomputation overwrites everything anyway.
        let unload_dev = |dense: &mut [u64], words: &[u32]| {
            if devs.is_some() {
                for &w in words {
                    dense[w as usize] = 0;
                }
            }
        };

        // ER factors further: per target, precompute the union diff the
        // circuit would have if every pattern deviated (the transfer
        // masks folded into the current diffs once). Scoring a candidate
        // is then a two-way select per deviating word — no per-output
        // loop and no flip materialization at all.
        let scored: Vec<Vec<ScoredLac>> = if eval.kind() == MetricKind::Er {
            let e1s: Vec<Vec<u64>> = pool.par_map_collect(&targets, |_, &tn| {
                let entry = store.get(tn).expect("mask entry was just built");
                let mut e1 = Vec::new();
                eval.er_conditional_union(&entry.outs, &entry.masks, &mut e1);
                e1
            });
            pool.par_chunk_results(cands.len(), chunk, |_, range| {
                let mut dev = vec![0u64; stride];
                let mut words: Vec<u32> = Vec::new();
                let mut out = Vec::with_capacity(range.len());
                for ci in range {
                    let lac = &cands[ci];
                    let slot = slot_of[&lac.tn] as usize;
                    load_dev(ci, &mut dev, &mut words);
                    let e_new = eval.er_with_deviation(&words, &dev, &e1s[slot]);
                    unload_dev(&mut dev, &words);
                    out.push(ScoredLac {
                        lac: *lac,
                        delta_e: e_new - current,
                        gain: mffcs[slot] - lac.new_node_cost() as i64,
                    });
                }
                out
            })
        } else {
            // Phase 2 (general metrics): score candidates in parallel.
            // Only deviation words are touched: flip rows are written
            // sparsely — and only for outputs whose footprint actually
            // intersects the deviation — evaluated via the word-sparse
            // path, and re-zeroed, so the per-chunk scratch stays clean
            // between candidates.
            let fp_len = MaskEntry::footprint_len(stride);
            pool.par_chunk_results(cands.len(), chunk, |_, range| {
                let mut dev = vec![0u64; stride];
                let mut flips = vec![vec![0u64; stride]; n_outputs];
                let mut words: Vec<u32> = Vec::new();
                let mut touched: Vec<u32> = Vec::new();
                let mut out = Vec::with_capacity(range.len());
                for ci in range {
                    let lac = &cands[ci];
                    let entry = store.get(lac.tn).expect("mask entry was just built");
                    load_dev(ci, &mut dev, &mut words);
                    touched.clear();
                    for (k, &o) in entry.outs.iter().enumerate() {
                        let fp = &entry.row_words[k * fp_len..(k + 1) * fp_len];
                        if !words
                            .iter()
                            .any(|&w| fp[(w >> 6) as usize] >> (w & 63) & 1 != 0)
                        {
                            continue; // no mask word under the deviation
                        }
                        let row = &entry.masks[k * stride..(k + 1) * stride];
                        let fl = &mut flips[o as usize];
                        for &w in &words {
                            fl[w as usize] = dev[w as usize] & row[w as usize];
                        }
                        touched.push(o);
                    }
                    let e_new = eval.with_flips_words(&words, &flips);
                    for &o in &touched {
                        let fl = &mut flips[o as usize];
                        for &w in &words {
                            fl[w as usize] = 0;
                        }
                    }
                    unload_dev(&mut dev, &words);
                    out.push(ScoredLac {
                        lac: *lac,
                        delta_e: e_new - current,
                        gain: mffcs[slot_of[&lac.tn] as usize] - lac.new_node_cost() as i64,
                    });
                }
                out
            })
        };
        self.phases.score_ms += t_score.elapsed().as_secs_f64() * 1e3;
        scored.into_iter().flatten().collect()
    }
}

/// Packs per-output flip rows into a [`MaskEntry`], keeping only the
/// outputs the node can actually influence.
fn build_entry(rows: &[Vec<u64>], stride: usize) -> MaskEntry {
    let outs: Vec<u32> = rows
        .iter()
        .enumerate()
        .filter(|(_, row)| row.iter().any(|&w| w != 0))
        .map(|(o, _)| o as u32)
        .collect();
    let fp_len = MaskEntry::footprint_len(stride);
    let mut masks = Vec::with_capacity(outs.len() * stride);
    let mut row_words = vec![0u64; outs.len() * fp_len];
    for (k, &o) in outs.iter().enumerate() {
        let row = &rows[o as usize];
        masks.extend_from_slice(row);
        for (w, &word) in row.iter().enumerate() {
            if word != 0 {
                row_words[k * fp_len + (w >> 6)] |= 1 << (w & 63);
            }
        }
    }
    MaskEntry {
        outs: outs.into_boxed_slice(),
        masks: masks.into_boxed_slice(),
        row_words: row_words.into_boxed_slice(),
    }
}

/// Reference estimator: clone the circuit, apply the LAC, re-simulate
/// everything, and measure the error against the golden signatures.
///
/// Slow (`O(circuit)` per candidate); used by tests and the estimator
/// ablation bench.
///
/// # Panics
///
/// Panics if the LAC does not apply cleanly.
pub fn exact_on_sample(
    aig: &Aig,
    golden: &[Vec<u64>],
    kind: MetricKind,
    pats: &Patterns,
    the_lac: &Lac,
) -> f64 {
    let mut copy = aig.clone();
    lac::apply(&mut copy, the_lac).expect("candidate must apply cleanly");
    let sim = simulate(&copy, pats);
    let sigs = sim.output_sigs(&copy);
    error(kind, golden, &sigs, pats.n_patterns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac::{generate_candidates, CandidateConfig};

    #[test]
    fn batch_estimates_are_exact_on_sample() {
        let g = benchgen::adders::rca(4);
        let pats = Patterns::exhaustive(8);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        for kind in [MetricKind::Er, MetricKind::Nmed, MetricKind::Mred] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
            let mut est = BatchEstimator::new(&g, &sim, &eval);
            let scored = est.score_all(&cands);
            for s in &scored {
                let exact = exact_on_sample(&g, &golden, kind, &pats, &s.lac);
                let predicted = est.current_error() + s.delta_e;
                assert!(
                    (predicted - exact).abs() < 1e-12,
                    "{kind} {}: predicted {predicted}, exact {exact}",
                    s.lac
                );
            }
        }
    }

    #[test]
    fn estimates_on_an_already_approximate_circuit() {
        // Apply one LAC, then verify estimation is still exact relative
        // to the golden circuit.
        let golden_aig = benchgen::multipliers::array_multiplier(3);
        let pats = Patterns::exhaustive(6);
        let golden = simulate(&golden_aig, &pats).output_sigs(&golden_aig);

        let mut approx = golden_aig.clone();
        let sim0 = simulate(&approx, &pats);
        let cands0 = generate_candidates(&approx, &sim0, &CandidateConfig::default());
        lac::apply(&mut approx, &cands0[1]).unwrap();
        approx.cleanup().unwrap();

        let sim = simulate(&approx, &pats);
        let mut eval = ErrorEval::new(MetricKind::Nmed, &golden, pats.n_patterns());
        eval.rebase(&sim.output_sigs(&approx));
        let cands = generate_candidates(&approx, &sim, &CandidateConfig::default());
        let mut est = BatchEstimator::new(&approx, &sim, &eval);
        let scored = est.score_all(&cands);
        for s in scored.iter().take(40) {
            let exact = exact_on_sample(&approx, &golden, MetricKind::Nmed, &pats, &s.lac);
            let predicted = est.current_error() + s.delta_e;
            assert!(
                (predicted - exact).abs() < 1e-12,
                "{}: predicted {predicted}, exact {exact}",
                s.lac
            );
        }
    }

    #[test]
    fn cached_deviations_match_fresh_scoring() {
        // score_all_cached with precomputed sparse deviation masks must
        // be bit-identical to score_all recomputing them, on both the
        // ER fast path and the general metric path.
        let g = benchgen::adders::rca(6);
        let pats = Patterns::random(12, 320, 11);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let cands = generate_candidates(&g, &sim, &CandidateConfig::default());
        let mut scratch = vec![0u64; sim.stride()];
        let devs: Vec<DevMask> = cands
            .iter()
            .map(|l| DevMask::of(&sim, l, &mut scratch))
            .collect();
        let dev_refs: Vec<&DevMask> = devs.iter().collect();
        for kind in [MetricKind::Er, MetricKind::Nmed] {
            let mut eval = ErrorEval::new(kind, &golden, pats.n_patterns());
            eval.rebase(&golden);
            let fresh = BatchEstimator::new(&g, &sim, &eval).score_all(&cands);
            let cached =
                BatchEstimator::new(&g, &sim, &eval).score_all_cached(&cands, &dev_refs);
            assert_eq!(fresh.len(), cached.len());
            for (f, c) in fresh.iter().zip(&cached) {
                assert_eq!(f.lac, c.lac);
                assert_eq!(f.gain, c.gain);
                assert_eq!(
                    f.delta_e.to_bits(),
                    c.delta_e.to_bits(),
                    "{kind} {}: ΔE drifted",
                    f.lac
                );
            }
        }
    }

    #[test]
    fn gain_reflects_mffc() {
        let mut g = aig::Aig::new("t", 3);
        let (a, b, c) = (g.pi(0), g.pi(1), g.pi(2));
        let ab = g.and(a, b);
        let y = g.and(ab, c);
        g.add_output(y, "y");
        let pats = Patterns::exhaustive(3);
        let sim = simulate(&g, &pats);
        let golden = sim.output_sigs(&g);
        let mut eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval.rebase(&golden);
        let mut est = BatchEstimator::new(&g, &sim, &eval);
        let scored = est.score_all(&[
            Lac::new(y.node(), lac::LacKind::Constant(false)),
            Lac::new(ab.node(), lac::LacKind::Constant(false)),
        ]);
        // Removing the top gate frees both gates; removing ab frees one.
        assert_eq!(scored[0].gain, 2);
        assert_eq!(scored[1].gain, 1);
    }

    #[test]
    fn cached_scores_match_fresh_after_a_round() {
        // Score, apply the best safe LAC, clean up, then score the new
        // circuit twice: once through the rolled cache and once from
        // scratch. The lists must be bit-identical and the cache must
        // actually carry entries forward.
        let g0 = benchgen::adders::rca(8);
        let pats = Patterns::random(16, 256, 7);
        let sim0 = simulate(&g0, &pats);
        let golden = sim0.output_sigs(&g0);
        let mut eval = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval.rebase(&golden);

        let mut cache = MaskCache::new();
        let cands0 = generate_candidates(&g0, &sim0, &CandidateConfig::default());
        let mut est = BatchEstimator::with_cache(&g0, &sim0, &eval, &mut cache, None);
        let scored0 = est.score_all(&cands0);

        // Avoid targets that drive an output: replacing an output
        // driver changes the output literal, which (by design) flushes
        // the mask cache instead of rolling it.
        let driven: std::collections::HashSet<_> =
            g0.outputs().iter().map(|o| o.lit.node()).collect();
        let pick = scored0
            .iter()
            .filter(|s| s.delta_e <= 0.02 && !driven.contains(&s.lac.tn))
            .max_by_key(|s| s.gain)
            .expect("some candidate fits the bound");
        let mut g1 = g0.clone();
        lac::apply(&mut g1, &pick.lac).unwrap();
        let remap = g1.cleanup().unwrap();

        let sim1 = simulate(&g1, &pats);
        let mut eval1 = ErrorEval::new(MetricKind::Er, &golden, pats.n_patterns());
        eval1.rebase(&sim1.output_sigs(&g1));
        let cands1 = generate_candidates(&g1, &sim1, &CandidateConfig::default());

        let mut cached_est =
            BatchEstimator::with_cache(&g1, &sim1, &eval1, &mut cache, Some(&remap));
        let cached = cached_est.score_all(&cands1);
        drop(cached_est);
        let stats = cache.stats();
        assert!(stats.carried > 0, "roll carried no masks: {stats:?}");
        assert!(stats.hits > 0, "no cache hits: {stats:?}");

        let mut fresh_est = BatchEstimator::new(&g1, &sim1, &eval1);
        let fresh = fresh_est.score_all(&cands1);
        assert_eq!(cached.len(), fresh.len());
        for (c, f) in cached.iter().zip(&fresh) {
            assert_eq!(c.lac, f.lac);
            assert_eq!(c.gain, f.gain);
            assert_eq!(
                c.delta_e.to_bits(),
                f.delta_e.to_bits(),
                "{}: cached {} vs fresh {}",
                c.lac,
                c.delta_e,
                f.delta_e
            );
        }
    }
}
