//! A combinational subset of Berkeley BLIF.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names` with
//! sum-of-products cube covers (including constant covers), line
//! continuations with `\`, comments with `#`, and `.end`. Latches and
//! subcircuits are rejected.

use crate::ParseError;
use aig::{Aig, Lit};
use std::collections::HashMap;

/// Serializes `aig` as BLIF. Every AND gate becomes a two-input
/// `.names`; output polarity is encoded in single-cube covers.
pub fn write(aig: &Aig) -> String {
    let (g, _) = aig.compact().expect("acyclic");
    let mut s = format!(".model {}\n", sanitize(g.name()));
    s.push_str(".inputs");
    for k in 0..g.n_pis() {
        s.push_str(&format!(" {}", sanitize(g.pi_name(k))));
    }
    s.push('\n');
    s.push_str(".outputs");
    for o in g.outputs() {
        s.push_str(&format!(" {}", sanitize(&o.name)));
    }
    s.push('\n');
    let sig = |l: Lit| -> String {
        let n = l.node();
        if n == aig::NodeId::CONST0 {
            "const0".to_string()
        } else if n.index() <= g.n_pis() {
            sanitize(g.pi_name(n.index() - 1))
        } else {
            format!("n{}", n.index())
        }
    };
    // Constant-zero helper net, only if some gate references it.
    let uses_const = g
        .and_ids()
        .filter_map(|id| g.fanins(id))
        .any(|(a, b)| a.is_const() || b.is_const())
        || g.outputs().iter().any(|o| o.lit.is_const());
    if uses_const {
        s.push_str(".names const0\n");
    }
    for id in g.and_ids() {
        let (a, b) = g.fanins(id).expect("and");
        s.push_str(&format!(".names {} {} n{}\n", sig(a), sig(b), id.index()));
        s.push_str(&format!(
            "{}{} 1\n",
            if a.is_neg() { '0' } else { '1' },
            if b.is_neg() { '0' } else { '1' }
        ));
    }
    for o in g.outputs() {
        let name = sanitize(&o.name);
        if o.lit == Lit::FALSE {
            s.push_str(&format!(".names {name}\n"));
        } else if o.lit == Lit::TRUE {
            s.push_str(&format!(".names {name}\n1\n"));
        } else {
            s.push_str(&format!(".names {} {name}\n", sig(o.lit)));
            s.push_str(if o.lit.is_neg() { "0 1\n" } else { "1 1\n" });
        }
    }
    s.push_str(".end\n");
    s
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// Parses combinational BLIF text into an [`Aig`].
///
/// `.names` covers are built as a sum of product cubes; signals must be
/// defined before use or be primary inputs (bodies may appear in any
/// order — a two-pass resolution handles forward references).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, latches, or undefined
/// signals.
pub fn read(text: &str) -> Result<Aig, ParseError> {
    // Tokenize into logical lines (handling \ continuations, comments).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (n, raw) in text.lines().enumerate() {
        let line = n + 1;
        let no_comment = raw.split('#').next().unwrap_or("");
        let (cont, body) = match no_comment.trim_end().strip_suffix('\\') {
            Some(b) => (true, b.to_string()),
            None => (false, no_comment.to_string()),
        };
        match pending.take() {
            Some((l0, mut acc)) => {
                acc.push(' ');
                acc.push_str(&body);
                if cont {
                    pending = Some((l0, acc));
                } else {
                    logical.push((l0, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((line, body));
                } else if !body.trim().is_empty() {
                    logical.push((line, body));
                }
            }
        }
    }
    if let Some((l, _)) = pending {
        return Err(ParseError::at("dangling line continuation", l));
    }

    let mut model = "blif".to_string();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // Each .names: (line, signal names [inputs..., output], cubes).
    let mut tables: Vec<(usize, Vec<String>, Vec<String>)> = Vec::new();
    let mut idx = 0;
    while idx < logical.len() {
        let (line, ref body) = logical[idx];
        let mut toks = body.split_whitespace();
        let head = toks.next().unwrap_or("");
        match head {
            ".model" => model = toks.next().unwrap_or("blif").to_string(),
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                let signals: Vec<String> = toks.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(ParseError::at(".names needs at least an output", line));
                }
                let mut cubes = Vec::new();
                while idx + 1 < logical.len() && !logical[idx + 1].1.trim_start().starts_with('.')
                {
                    idx += 1;
                    cubes.push(logical[idx].1.trim().to_string());
                }
                tables.push((line, signals, cubes));
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" => {
                return Err(ParseError::at(format!("{head} is not supported"), line));
            }
            _ => return Err(ParseError::at(format!("unexpected `{head}`"), line)),
        }
        idx += 1;
    }
    if outputs.is_empty() {
        return Err(ParseError::new("no .outputs declared"));
    }

    let mut g = Aig::new(model, inputs.len());
    let mut env: HashMap<String, Lit> = HashMap::new();
    for (k, name) in inputs.iter().enumerate() {
        g.set_pi_name(k, name.clone());
        env.insert(name.clone(), g.pi(k));
    }
    // Multi-pass resolution to allow out-of-order definitions.
    let mut remaining = tables;
    loop {
        let before = remaining.len();
        let mut still: Vec<(usize, Vec<String>, Vec<String>)> = Vec::new();
        for (line, signals, cubes) in remaining {
            let deps = &signals[..signals.len() - 1];
            if deps.iter().all(|d| env.contains_key(d)) {
                let lit = build_cover(&mut g, &env, deps, &cubes, line)?;
                env.insert(signals.last().expect("nonempty").clone(), lit);
            } else {
                still.push((line, signals, cubes));
            }
        }
        if still.is_empty() {
            break;
        }
        if still.len() == before {
            let (line, signals, _) = &still[0];
            return Err(ParseError::at(
                format!(
                    "unresolved signals in .names for `{}`",
                    signals.last().expect("nonempty")
                ),
                *line,
            ));
        }
        remaining = still;
    }
    for name in &outputs {
        let lit = env
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::new(format!("output `{name}` is undefined")))?;
        g.add_output(lit, name.clone());
    }
    Ok(g)
}

/// Builds the sum-of-products for one `.names` cover.
fn build_cover(
    g: &mut Aig,
    env: &HashMap<String, Lit>,
    deps: &[String],
    cubes: &[String],
    line: usize,
) -> Result<Lit, ParseError> {
    if deps.is_empty() {
        // Constant: empty cover = 0; a bare "1" line = 1.
        let one = cubes.iter().any(|c| c.trim() == "1");
        return Ok(if one { Lit::TRUE } else { Lit::FALSE });
    }
    let mut terms: Vec<Lit> = Vec::new();
    for cube in cubes {
        let mut parts = cube.split_whitespace();
        let pattern = parts.next().unwrap_or("");
        let value = parts.next().unwrap_or("1");
        if value != "1" {
            return Err(ParseError::at(
                "only on-set (`1`) covers are supported",
                line,
            ));
        }
        if pattern.len() != deps.len() {
            return Err(ParseError::at(
                format!(
                    "cube `{pattern}` has {} literals, expected {}",
                    pattern.len(),
                    deps.len()
                ),
                line,
            ));
        }
        let mut product: Vec<Lit> = Vec::new();
        for (c, dep) in pattern.chars().zip(deps) {
            let lit = env[dep];
            match c {
                '1' => product.push(lit),
                '0' => product.push(!lit),
                '-' => {}
                other => {
                    return Err(ParseError::at(format!("bad cube character `{other}`"), line))
                }
            }
        }
        terms.push(g.and_many(&product));
    }
    Ok(g.or_many(&terms))
}
