//! AIGER reader/writer (combinational subset: no latches).
//!
//! Supports the ASCII (`aag`) and binary (`aig`) variants, symbol tables,
//! and comments. See the AIGER format description by Biere et al.

use crate::ParseError;
use aig::{Aig, Lit};

/// Upper bound on any AIGER header count (`M`, `I`, `L`, `O`, `A`).
/// Header counts size allocations before any payload is read, so a
/// forged `aag 99999999999999 ...` header must produce a parse error,
/// not an out-of-memory abort. 16M variables is far beyond anything
/// the synthesis stack downstream can process.
const MAX_HEADER_COUNT: usize = 1 << 24;

/// Rejects header counts large enough to turn the pre-allocation of
/// `var_map`/output lists into a memory bomb.
fn check_header_counts(counts: [(char, usize); 5], line: usize) -> Result<(), ParseError> {
    for (what, n) in counts {
        if n > MAX_HEADER_COUNT {
            return Err(ParseError::at(
                format!("header count {what}={n} exceeds the supported maximum {MAX_HEADER_COUNT}"),
                line,
            ));
        }
    }
    Ok(())
}

/// Serializes `aig` in ASCII AIGER (`aag`) format with a symbol table.
///
/// The graph is compacted first, so dangling nodes are not emitted.
pub fn write_ascii(aig: &Aig) -> String {
    let (g, _) = aig.compact().expect("acyclic");
    let i = g.n_pis();
    let a = g.n_ands();
    let m = i + a;
    let mut s = format!("aag {m} {i} 0 {} {a}\n", g.n_pos());
    for k in 0..i {
        s.push_str(&format!("{}\n", (k + 1) * 2));
    }
    for o in g.outputs() {
        s.push_str(&format!("{}\n", o.lit.raw()));
    }
    for id in g.and_ids() {
        let (f0, f1) = g.fanins(id).expect("and node");
        s.push_str(&format!("{} {} {}\n", id.index() * 2, f0.raw(), f1.raw()));
    }
    for k in 0..i {
        s.push_str(&format!("i{k} {}\n", g.pi_name(k)));
    }
    for (k, o) in g.outputs().iter().enumerate() {
        s.push_str(&format!("o{k} {}\n", o.name));
    }
    s.push_str(&format!("c\n{}\n", g.name()));
    s
}

/// Parses ASCII AIGER (`aag`) text into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, latches, or forward
/// references.
pub fn read_ascii(text: &str) -> Result<Aig, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseError::new("empty input"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseError::at("expected `aag M I L O A` header", 1));
    }
    let parse = |s: &str, line: usize| -> Result<usize, ParseError> {
        s.parse()
            .map_err(|_| ParseError::at(format!("bad number `{s}`"), line))
    };
    let m = parse(fields[1], 1)?;
    let i = parse(fields[2], 1)?;
    let l = parse(fields[3], 1)?;
    let o = parse(fields[4], 1)?;
    let a = parse(fields[5], 1)?;
    check_header_counts([('M', m), ('I', i), ('L', l), ('O', o), ('A', a)], 1)?;
    if l != 0 {
        return Err(ParseError::at("latches are not supported", 1));
    }
    if m < i + a {
        return Err(ParseError::at("inconsistent header counts", 1));
    }

    let mut g = Aig::new("aiger", i);
    // Map AIGER variable -> literal in our graph.
    let mut var_map: Vec<Option<Lit>> = vec![None; m + 1];
    var_map[0] = Some(Lit::FALSE);

    let mut next = |expected: &str| -> Result<(usize, String), ParseError> {
        lines
            .next()
            .map(|(n, s)| (n + 1, s.to_string()))
            .ok_or_else(|| ParseError::new(format!("unexpected end of file, expected {expected}")))
    };

    for k in 0..i {
        let (line, s) = next("an input literal")?;
        let lit: usize = parse(s.trim(), line)?;
        if !lit.is_multiple_of(2) || lit == 0 {
            return Err(ParseError::at(
                "input literal must be even and nonzero",
                line,
            ));
        }
        let var = lit / 2;
        if var > m || var_map[var].is_some() {
            return Err(ParseError::at("bad input variable", line));
        }
        var_map[var] = Some(g.pi(k));
    }
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let (line, s) = next("an output literal")?;
        output_lits.push((parse(s.trim(), line)?, line));
    }
    for _ in 0..a {
        let (line, s) = next("an AND definition")?;
        let nums: Vec<&str> = s.split_whitespace().collect();
        if nums.len() != 3 {
            return Err(ParseError::at("expected `lhs rhs0 rhs1`", line));
        }
        let lhs = parse(nums[0], line)?;
        let rhs0 = parse(nums[1], line)?;
        let rhs1 = parse(nums[2], line)?;
        if lhs % 2 != 0 || lhs == 0 {
            return Err(ParseError::at("AND lhs must be even and nonzero", line));
        }
        let var = lhs / 2;
        if var > m || var_map[var].is_some() {
            return Err(ParseError::at(
                "AND variable redefined or out of range",
                line,
            ));
        }
        let lookup = |raw: usize| -> Result<Lit, ParseError> {
            let v = raw / 2;
            if v > m {
                return Err(ParseError::at("fanin variable out of range", line));
            }
            var_map[v]
                .map(|lit| lit.xor_neg(raw % 2 == 1))
                .ok_or_else(|| ParseError::at("forward reference in AND fanin", line))
        };
        let f0 = lookup(rhs0)?;
        let f1 = lookup(rhs1)?;
        var_map[var] = Some(g.and(f0, f1));
    }
    for (raw, line) in output_lits {
        let v = raw / 2;
        if v > m {
            return Err(ParseError::at("output variable out of range", line));
        }
        let lit = var_map[v]
            .map(|l| l.xor_neg(raw % 2 == 1))
            .ok_or_else(|| ParseError::at("output references undefined variable", line))?;
        g.add_output(lit, format!("o{}", g.n_pos()));
    }
    // Symbol table, then comments (first comment line = circuit name).
    let mut in_comments = false;
    for (n, s) in lines {
        let line = n + 1;
        let s = s.trim();
        if in_comments {
            if !s.is_empty() {
                g.set_name(s.to_string());
            }
            break;
        }
        if s == "c" {
            in_comments = true;
            continue;
        }
        if let Some(rest) = s.strip_prefix('i') {
            let (idx, name) = split_symbol(rest, line)?;
            if idx < i {
                g.set_pi_name(idx, name);
            }
        } else if let Some(rest) = s.strip_prefix('o') {
            let (idx, name) = split_symbol(rest, line)?;
            if idx < g.n_pos() {
                g.set_output_name(idx, name).expect("index checked");
            }
        }
    }
    Ok(g)
}

fn split_symbol(rest: &str, line: usize) -> Result<(usize, String), ParseError> {
    let mut parts = rest.splitn(2, ' ');
    let idx: usize = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| ParseError::at("bad symbol index", line))?;
    let name = parts.next().unwrap_or("").to_string();
    Ok((idx, name))
}

/// Serializes `aig` in binary AIGER (`aig`) format.
pub fn write_binary(aig: &Aig) -> Vec<u8> {
    let (g, _) = aig.compact().expect("acyclic");
    let i = g.n_pis();
    let a = g.n_ands();
    let m = i + a;
    let mut out = format!("aig {m} {i} 0 {} {a}\n", g.n_pos()).into_bytes();
    for o in g.outputs() {
        out.extend_from_slice(format!("{}\n", o.lit.raw()).as_bytes());
    }
    for id in g.and_ids() {
        let (f0, f1) = g.fanins(id).expect("and node");
        let lhs = (id.index() * 2) as u32;
        let (mut r0, mut r1) = (f0.raw(), f1.raw());
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        write_leb(&mut out, lhs - r0);
        write_leb(&mut out, r0 - r1);
    }
    out
}

/// Parses binary AIGER (`aig`) bytes into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or latches.
pub fn read_binary(bytes: &[u8]) -> Result<Aig, ParseError> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseError::new("missing header"))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| ParseError::new("header is not UTF-8"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(ParseError::new("expected `aig M I L O A` header"));
    }
    let nums: Vec<usize> = fields[1..]
        .iter()
        .map(|s| s.parse().map_err(|_| ParseError::new("bad header number")))
        .collect::<Result<_, _>>()?;
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    check_header_counts([('M', m), ('I', i), ('L', l), ('O', o), ('A', a)], 1)?;
    if l != 0 {
        return Err(ParseError::new("latches are not supported"));
    }
    if m != i + a {
        return Err(ParseError::new("binary AIGER requires M = I + A"));
    }
    let mut pos = header_end + 1;
    let mut outputs = Vec::with_capacity(o);
    for _ in 0..o {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ParseError::new("truncated output list"))?;
        let s = std::str::from_utf8(&bytes[pos..pos + end])
            .map_err(|_| ParseError::new("output literal is not UTF-8"))?;
        outputs.push(
            s.trim()
                .parse::<usize>()
                .map_err(|_| ParseError::new("bad output literal"))?,
        );
        pos += end + 1;
    }
    let mut g = Aig::new("aiger", i);
    let mut lits: Vec<Lit> = Vec::with_capacity(m + 1);
    lits.push(Lit::FALSE);
    for k in 0..i {
        lits.push(g.pi(k));
    }
    for k in 0..a {
        let lhs = 2 * (i + k + 1) as u32;
        let d0 = read_leb(bytes, &mut pos)?;
        let d1 = read_leb(bytes, &mut pos)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseError::new("delta underflow"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| ParseError::new("delta underflow"))?;
        let f = |raw: u32| -> Result<Lit, ParseError> {
            let v = (raw / 2) as usize;
            if v >= lits.len() {
                return Err(ParseError::new("fanin out of range"));
            }
            Ok(lits[v].xor_neg(raw % 2 == 1))
        };
        let lit = {
            let f0 = f(r0)?;
            let f1 = f(r1)?;
            g.and(f0, f1)
        };
        lits.push(lit);
    }
    for raw in outputs {
        let v = raw / 2;
        if v >= lits.len() {
            return Err(ParseError::new("output out of range"));
        }
        g.add_output(lits[v].xor_neg(raw % 2 == 1), format!("o{}", g.n_pos()));
    }
    Ok(g)
}

fn write_leb(out: &mut Vec<u8>, mut x: u32) {
    loop {
        let mut byte = (x & 0x7F) as u8;
        x >>= 7;
        if x != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if x == 0 {
            break;
        }
    }
}

fn read_leb(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    let mut x = 0u32;
    let mut shift = 0;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| ParseError::new("truncated binary AND section"))?;
        *pos += 1;
        x |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 28 {
            return Err(ParseError::new("LEB128 value too large"));
        }
    }
}
