//! Readers and writers for standard combinational circuit formats.
//!
//! - [`aiger`] — the AIGER format, both ASCII (`aag`) and binary (`aig`),
//!   including the symbol table. AIGER is the lingua franca of AIG-based
//!   tools, so real benchmark files can be loaded into this workspace
//!   when they are available.
//! - [`blif`] — a combinational subset of Berkeley BLIF (`.model`,
//!   `.inputs`, `.outputs`, `.names` with cube covers, `.end`).
//!
//! # Example
//!
//! ```
//! use circuitio::aiger;
//!
//! let g = benchgen::adders::rca(4);
//! let text = aiger::write_ascii(&g);
//! let back = aiger::read_ascii(&text)?;
//! assert_eq!(back.n_pis(), g.n_pis());
//! assert_eq!(back.eval(&vec![true; 8]), g.eval(&vec![true; 8]));
//! # Ok::<(), circuitio::ParseError>(())
//! ```

pub mod aiger;
pub mod blif;

use std::fmt;

/// A parse failure, with the (1-based) line where it occurred when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number, when meaningful.
    pub line: Option<usize>,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            line: None,
        }
    }

    pub(crate) fn at(message: impl Into<String>, line: usize) -> Self {
        ParseError {
            message: message.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseError {}
