//! Adversarial-input tests: forged headers whose counts would, taken
//! at face value, pre-allocate gigabytes before a single payload line
//! is read. Every such input must come back as a [`ParseError`], not a
//! panic or an out-of-memory abort.

use circuitio::aiger;

#[test]
fn ascii_huge_m_is_rejected_not_allocated() {
    // M alone sizes the variable map; I and A stay tiny so the old
    // `m >= i + a` consistency check would happily pass.
    let text = "aag 99999999999999 1 0 1 1\n2\n4\n4 2 3\n";
    let err = aiger::read_ascii(text).unwrap_err();
    assert!(err.to_string().contains("exceeds"), "got: {err}");
}

#[test]
fn ascii_huge_inputs_are_rejected() {
    let text = "aag 99999999999999 99999999999998 0 1 1\n";
    assert!(aiger::read_ascii(text).is_err());
}

#[test]
fn ascii_huge_output_count_is_rejected() {
    let text = "aag 4 2 0 99999999999999 2\n";
    let err = aiger::read_ascii(text).unwrap_err();
    assert!(err.to_string().contains("exceeds"), "got: {err}");
}

#[test]
fn binary_huge_header_is_rejected_not_allocated() {
    for header in [
        "aig 99999999999999 99999999999998 0 1 1\n",
        "aig 99999999999999 1 0 1 99999999999998\n",
        "aig 4 2 0 99999999999999 2\n",
    ] {
        let err = aiger::read_binary(header.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "header {header:?}: {err}");
    }
}

#[test]
fn counts_past_usize_are_a_parse_error() {
    // Larger than u64: the number itself must fail to parse cleanly.
    let text = "aag 999999999999999999999999999999 1 0 0 0\n";
    assert!(aiger::read_ascii(text).is_err());
    assert!(aiger::read_binary(text.replace("aag", "aig").as_bytes()).is_err());
}

#[test]
fn reasonable_headers_still_parse() {
    // The cap must not bite legitimate circuits.
    let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
    let g = aiger::read_ascii(text).unwrap();
    assert_eq!(g.n_pis(), 2);
    assert_eq!(g.n_ands(), 1);
}
