//! Property tests: every random circuit survives a round trip through
//! each format with its function intact.

use aig::{Aig, Lit};
use circuitio::{aiger, blif};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    n_pis: usize,
    steps: Vec<(usize, bool, usize, bool)>,
    outputs: Vec<(usize, bool)>,
}

fn build(recipe: &Recipe) -> Aig {
    let mut g = Aig::new("random", recipe.n_pis);
    let mut lits: Vec<Lit> = (0..recipe.n_pis).map(|i| g.pi(i)).collect();
    lits.push(Lit::TRUE);
    for &(ai, an, bi, bn) in &recipe.steps {
        let a = lits[ai % lits.len()].xor_neg(an);
        let b = lits[bi % lits.len()].xor_neg(bn);
        lits.push(g.and(a, b));
    }
    for &(oi, on) in &recipe.outputs {
        let l = lits[oi % lits.len()].xor_neg(on);
        g.add_output(l, format!("y{}", g.n_pos()));
    }
    g
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..7, 0usize..50, 1usize..6).prop_flat_map(|(n_pis, n_steps, n_outs)| {
        (
            proptest::collection::vec(
                (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
                n_steps,
            ),
            proptest::collection::vec((any::<usize>(), any::<bool>()), n_outs),
        )
            .prop_map(move |(steps, outputs)| Recipe {
                n_pis,
                steps,
                outputs,
            })
    })
}

fn assert_equiv(a: &Aig, b: &Aig, n_pis: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.n_pis(), b.n_pis());
    prop_assert_eq!(a.n_pos(), b.n_pos());
    for p in 0..1usize << n_pis {
        let ins: Vec<bool> = (0..n_pis).map(|i| p >> i & 1 == 1).collect();
        prop_assert_eq!(a.eval(&ins), b.eval(&ins), "pattern {}", p);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aiger_ascii_round_trip(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let back = aiger::read_ascii(&aiger::write_ascii(&g)).expect("own output parses");
        assert_equiv(&g, &back, recipe.n_pis)?;
    }

    #[test]
    fn aiger_binary_round_trip(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let back = aiger::read_binary(&aiger::write_binary(&g)).expect("own output parses");
        assert_equiv(&g, &back, recipe.n_pis)?;
    }

    #[test]
    fn blif_round_trip(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let back = blif::read(&blif::write(&g)).expect("own output parses");
        assert_equiv(&g, &back, recipe.n_pis)?;
    }

    #[test]
    fn written_ascii_never_has_forward_references(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let text = aiger::write_ascii(&g);
        // Check the AIGER invariant directly: every AND lhs exceeds its
        // rhs literals.
        let mut lines = text.lines();
        let header: Vec<usize> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .skip(1)
            .map(|s| s.parse().unwrap())
            .collect();
        let (i, o, a) = (header[1], header[3], header[4]);
        let body: Vec<&str> = lines.collect();
        for and_line in body.iter().skip(i + o).take(a) {
            let nums: Vec<usize> = and_line
                .split_whitespace()
                .map(|s| s.parse().unwrap())
                .collect();
            prop_assert!(nums[0] > nums[1] && nums[0] > nums[2],
                "AND ordering violated: {:?}", nums);
        }
    }
}
