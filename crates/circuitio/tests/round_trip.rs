//! Round-trip tests: writing a circuit and reading it back must preserve
//! its function across AIGER ASCII, AIGER binary, and BLIF.

use aig::Aig;
use circuitio::{aiger, blif};
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

fn same_function(a: &Aig, b: &Aig, samples: usize, seed: u64) {
    assert_eq!(a.n_pis(), b.n_pis());
    assert_eq!(a.n_pos(), b.n_pos());
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..samples {
        let ins: Vec<bool> = (0..a.n_pis()).map(|_| rng.gen()).collect();
        assert_eq!(a.eval(&ins), b.eval(&ins), "sample {s}");
    }
}

fn suite() -> Vec<Aig> {
    vec![
        benchgen::adders::rca(6),
        benchgen::multipliers::wallace_multiplier(4),
        benchgen::suite::by_name("c880").unwrap(),
        benchgen::control::priority_encoder(9),
    ]
}

#[test]
fn aiger_ascii_round_trip() {
    for g in suite() {
        let text = aiger::write_ascii(&g);
        let back = aiger::read_ascii(&text).unwrap();
        same_function(&g, &back, 64, 1);
    }
}

#[test]
fn aiger_binary_round_trip() {
    for g in suite() {
        let bytes = aiger::write_binary(&g);
        let back = aiger::read_binary(&bytes).unwrap();
        same_function(&g, &back, 64, 2);
    }
}

#[test]
fn blif_round_trip() {
    for g in suite() {
        let text = blif::write(&g);
        let back = blif::read(&text).unwrap();
        same_function(&g, &back, 64, 3);
    }
}

#[test]
fn ascii_symbol_table_preserves_names() {
    let mut g = Aig::new("named", 2);
    g.set_pi_name(0, "alpha");
    g.set_pi_name(1, "beta");
    let y = g.and(g.pi(0), g.pi(1));
    g.add_output(y, "gamma");
    let text = aiger::write_ascii(&g);
    let back = aiger::read_ascii(&text).unwrap();
    assert_eq!(back.pi_name(0), "alpha");
    assert_eq!(back.pi_name(1), "beta");
    assert_eq!(back.outputs()[0].name, "gamma");
}

#[test]
fn formats_cross_agree() {
    let g = benchgen::adders::cla(8, 4);
    let via_ascii = aiger::read_ascii(&aiger::write_ascii(&g)).unwrap();
    let via_binary = aiger::read_binary(&aiger::write_binary(&g)).unwrap();
    let via_blif = blif::read(&blif::write(&g)).unwrap();
    same_function(&via_ascii, &via_binary, 32, 4);
    same_function(&via_ascii, &via_blif, 32, 5);
}

#[test]
fn constant_and_inverted_outputs_survive() {
    let mut g = Aig::new("consts", 1);
    g.add_output(aig::Lit::TRUE, "one");
    g.add_output(aig::Lit::FALSE, "zero");
    g.add_output(!g.pi(0), "na");
    for back in [
        aiger::read_ascii(&aiger::write_ascii(&g)).unwrap(),
        aiger::read_binary(&aiger::write_binary(&g)).unwrap(),
        blif::read(&blif::write(&g)).unwrap(),
    ] {
        assert_eq!(back.eval(&[false]), vec![true, false, true]);
        assert_eq!(back.eval(&[true]), vec![true, false, false]);
    }
}

#[test]
fn parse_errors_are_reported() {
    assert!(aiger::read_ascii("").is_err());
    assert!(aiger::read_ascii("aag 1 1 1 0 0\n2\n").is_err()); // latch
    assert!(aiger::read_ascii("nonsense").is_err());
    assert!(aiger::read_binary(b"aig 1 1").is_err());
    assert!(blif::read(".model m\n.inputs a\n.latch a b\n.end").is_err());
    assert!(blif::read(".model m\n.inputs a\n.outputs z\n.end").is_err()); // z undefined
    let cyclic = ".model m\n.inputs a\n.outputs y\n.names x y\n1 1\n.names y x\n1 1\n.end";
    assert!(blif::read(cyclic).is_err(), "combinational loop rejected");
}

#[test]
fn blif_supports_dont_cares_and_continuations() {
    let text = ".model t\n.inputs a b c\n.outputs y\n.names a b \\\nc y\n1-1 1\n01- 1\n.end";
    let g = blif::read(text).unwrap();
    // y = (a & c) | (!a & b)
    assert_eq!(g.eval(&[true, false, true]), vec![true]);
    assert_eq!(g.eval(&[false, true, false]), vec![true]);
    assert_eq!(g.eval(&[true, true, false]), vec![false]);
    assert_eq!(g.eval(&[false, false, true]), vec![false]);
}

#[test]
fn blif_out_of_order_definitions_resolve() {
    let text = ".model t\n.inputs a b\n.outputs y\n.names m y\n1 1\n.names a b m\n11 1\n.end";
    let g = blif::read(text).unwrap();
    assert_eq!(g.eval(&[true, true]), vec![true]);
    assert_eq!(g.eval(&[true, false]), vec![false]);
}

#[test]
fn ascii_comment_carries_the_circuit_name() {
    let g = benchgen::adders::rca(4);
    let back = aiger::read_ascii(&aiger::write_ascii(&g)).unwrap();
    assert_eq!(back.name(), "rca4");
}
