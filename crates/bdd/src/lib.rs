//! Reduced ordered binary decision diagrams (ROBDDs) with model
//! counting, built for *exact* verification of approximate circuits.
//!
//! Simulation-based error metrics are exact only with respect to their
//! pattern sample. This crate provides the complementary exact path: an
//! AIG is converted to BDDs ([`Manager::build_outputs`]), a miter between
//! the golden and approximate circuits is formed, and the error rate is
//! computed by model counting ([`exact::error_rate`]) — no sampling
//! involved. Intended for small and medium circuits (the manager has a
//! configurable node budget and reports blow-ups as
//! [`BddError::NodeLimit`] instead of consuming unbounded memory).
//!
//! # Example
//!
//! ```
//! use bdd::exact;
//!
//! // Golden: 2-bit AND; approximate: first input passed through.
//! let mut golden = aig::Aig::new("g", 2);
//! let y = golden.and(golden.pi(0), golden.pi(1));
//! golden.add_output(y, "y");
//! let mut approx = aig::Aig::new("a", 2);
//! let ya = approx.pi(0);
//! approx.add_output(ya, "y");
//!
//! let er = exact::error_rate(&golden, &approx, 1 << 20)?;
//! assert_eq!(er, 0.25); // wrong only for a=1, b=0
//! # Ok::<(), bdd::BddError>(())
//! ```

mod manager;

pub use manager::{BddError, BddRef, Manager};

/// Exact error metrics between two circuits, via BDD model counting.
pub mod exact {
    use crate::manager::{BddError, BddRef, Manager};
    use aig::Aig;

    /// Builds both circuits in one manager and returns per-output
    /// XOR (difference) functions.
    fn difference_bdds(
        golden: &Aig,
        approx: &Aig,
        node_limit: usize,
    ) -> Result<(Manager, Vec<BddRef>), BddError> {
        assert_eq!(golden.n_pis(), approx.n_pis(), "input counts differ");
        assert_eq!(golden.n_pos(), approx.n_pos(), "output counts differ");
        let mut m = Manager::new(golden.n_pis(), node_limit);
        let g_outs = m.build_outputs(golden)?;
        let a_outs = m.build_outputs(approx)?;
        let mut diffs = Vec::with_capacity(g_outs.len());
        for (g, a) in g_outs.into_iter().zip(a_outs) {
            diffs.push(m.xor(g, a)?);
        }
        Ok((m, diffs))
    }

    /// The exact error rate: the fraction of the `2^n` input assignments
    /// on which any output differs.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the BDDs exceed `node_limit`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' interfaces differ.
    pub fn error_rate(golden: &Aig, approx: &Aig, node_limit: usize) -> Result<f64, BddError> {
        let (mut m, diffs) = difference_bdds(golden, approx, node_limit)?;
        let mut any = Manager::zero();
        for d in diffs {
            any = m.or(any, d)?;
        }
        Ok(m.density(any))
    }

    /// The exact mean Hamming distance between the output vectors,
    /// averaged over all `2^n` input assignments.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the BDDs exceed `node_limit`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' interfaces differ.
    pub fn mean_hamming(golden: &Aig, approx: &Aig, node_limit: usize) -> Result<f64, BddError> {
        let (m, diffs) = difference_bdds(golden, approx, node_limit)?;
        Ok(diffs.iter().map(|&d| m.density(d)).sum())
    }

    /// The exact mean error distance `E[|approx - golden|]` over all
    /// `2^n` assignments, with outputs read as unsigned binary numbers
    /// (output 0 = LSB).
    ///
    /// Built structurally: both circuits are merged over shared inputs,
    /// an absolute-difference network is stacked on their outputs, and
    /// each difference bit's probability is model-counted.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the BDDs exceed `node_limit`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' interfaces differ.
    pub fn mean_error_distance(
        golden: &Aig,
        approx: &Aig,
        node_limit: usize,
    ) -> Result<f64, BddError> {
        assert_eq!(golden.n_pis(), approx.n_pis(), "input counts differ");
        assert_eq!(golden.n_pos(), approx.n_pos(), "output counts differ");
        let diff = difference_network(golden, approx);
        let mut m = Manager::new(golden.n_pis(), node_limit);
        let bits = m.build_outputs(&diff)?;
        let mut expected = 0.0;
        for (k, &b) in bits.iter().enumerate() {
            expected += (1u128 << k) as f64 * m.density(b);
        }
        Ok(expected)
    }

    /// Builds a circuit computing `|golden_out - approx_out|` over the
    /// shared inputs (one output bit per position, plus a top borrow
    /// bit's worth of width).
    fn difference_network(golden: &Aig, approx: &Aig) -> Aig {
        use aig::{Lit, Node};
        let n = golden.n_pis();
        let w = golden.n_pos();
        let mut m = Aig::new("diff", n);

        let copy = |src: &Aig, m: &mut Aig| -> Vec<Lit> {
            let order = src.topo_order().expect("acyclic");
            let mut map: Vec<Option<Lit>> = vec![None; src.n_nodes()];
            map[0] = Some(Lit::FALSE);
            for id in order {
                match *src.node(id) {
                    Node::Const0 => {}
                    Node::Input(i) => map[id.index()] = Some(m.pi(i as usize)),
                    Node::And(a, b) => {
                        let fa = map[a.node().index()].expect("fanins first").xor_neg(a.is_neg());
                        let fb = map[b.node().index()].expect("fanins first").xor_neg(b.is_neg());
                        map[id.index()] = Some(m.and(fa, fb));
                    }
                }
            }
            src.outputs()
                .iter()
                .map(|o| map[o.lit.node().index()].expect("live").xor_neg(o.lit.is_neg()))
                .collect()
        };
        let g_out = copy(golden, &mut m);
        let a_out = copy(approx, &mut m);

        // d = a - g (two's complement, w+1 bits); if negative, negate.
        let mut ax = a_out.clone();
        ax.push(Lit::FALSE);
        let mut gx = g_out.clone();
        gx.push(Lit::FALSE);
        // a + !g + 1
        let mut carry = Lit::TRUE;
        let mut d = Vec::with_capacity(w + 1);
        for i in 0..w + 1 {
            let ng = !gx[i];
            let axb = m.xor(ax[i], ng);
            let sum = m.xor(axb, carry);
            let and1 = m.and(ax[i], ng);
            let and2 = m.and(axb, carry);
            carry = m.or(and1, and2);
            d.push(sum);
        }
        let sign = d[w];
        // |d| = sign ? (~d + 1) : d  — conditional two's complement.
        let mut c2 = sign; // +1 only when negating
        let mut abs = Vec::with_capacity(w);
        for &bit in d.iter().take(w) {
            let flipped = m.xor(bit, sign);
            let sum = m.xor(flipped, c2);
            let cnew = m.and(flipped, c2);
            c2 = cnew;
            abs.push(sum);
        }
        for (k, &b) in abs.iter().enumerate() {
            m.add_output(b, format!("d{k}"));
        }
        m
    }

    /// The exact probability that output `o` of the two circuits
    /// disagrees.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the BDDs exceed `node_limit`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if the circuits' interfaces differ or `o` is out of range.
    pub fn output_error_probability(
        golden: &Aig,
        approx: &Aig,
        o: usize,
        node_limit: usize,
    ) -> Result<f64, BddError> {
        let (m, diffs) = difference_bdds(golden, approx, node_limit)?;
        Ok(m.density(diffs[o]))
    }
}

#[cfg(test)]
mod tests {
    use super::exact;
    use aig::Aig;

    #[test]
    fn identical_circuits_have_zero_error() {
        let g = benchgen::adders::rca(4);
        assert_eq!(exact::error_rate(&g, &g.clone(), 1 << 20).unwrap(), 0.0);
        assert_eq!(exact::mean_hamming(&g, &g.clone(), 1 << 20).unwrap(), 0.0);
    }

    #[test]
    fn single_output_flip_probability() {
        // approx inverts the carry-out: differs on every assignment for
        // that output, ER = 1.
        let golden = benchgen::adders::rca(3);
        let mut approx = golden.clone();
        let out = approx.outputs().last().unwrap().lit;
        let idx = approx.n_pos() - 1;
        approx.set_output(idx, !out).unwrap();
        let p = exact::output_error_probability(&golden, &approx, idx, 1 << 20).unwrap();
        assert_eq!(p, 1.0);
        assert_eq!(exact::error_rate(&golden, &approx, 1 << 20).unwrap(), 1.0);
    }

    #[test]
    fn node_limit_is_enforced() {
        let g = benchgen::multipliers::wallace_multiplier(8);
        // A multiplier's BDDs are large; a tiny budget must error out
        // rather than churn.
        let r = exact::error_rate(&g, &g.clone(), 100);
        assert!(matches!(r, Err(crate::BddError::NodeLimit(_))));
    }

    #[test]
    fn matches_exhaustive_simulation() {
        use bitsim::{simulate, Patterns};
        let golden = benchgen::multipliers::array_multiplier(3);
        // Corrupt one internal node.
        let mut approx = golden.clone();
        let mid = approx.and_ids().nth(10).unwrap();
        approx.replace(mid, aig::Lit::TRUE).unwrap();
        approx.cleanup().unwrap();

        let pats = Patterns::exhaustive(6);
        let gs = simulate(&golden, &pats).output_sigs(&golden);
        let as_ = simulate(&approx, &pats).output_sigs(&approx);
        let sampled = errmetrics::error(errmetrics::MetricKind::Er, &gs, &as_, 64);
        let exact_er = exact::error_rate(&golden, &approx, 1 << 20).unwrap();
        assert!((sampled - exact_er).abs() < 1e-12, "{sampled} vs {exact_er}");
    }

    #[test]
    fn mean_hamming_counts_each_output() {
        // golden: (a, b); approx: (a, !b). Output 1 differs always.
        let mut golden = Aig::new("g", 2);
        let (a, b) = (golden.pi(0), golden.pi(1));
        golden.add_output(a, "y0");
        golden.add_output(b, "y1");
        let mut approx = Aig::new("a", 2);
        let (aa, ab) = (approx.pi(0), approx.pi(1));
        approx.add_output(aa, "y0");
        approx.add_output(!ab, "y1");
        assert_eq!(exact::mean_hamming(&golden, &approx, 1 << 16).unwrap(), 1.0);
    }
}

#[cfg(test)]
mod med_tests {
    use super::exact;

    /// Brute-force MED over all assignments.
    fn brute_med(golden: &aig::Aig, approx: &aig::Aig) -> f64 {
        let n = golden.n_pis();
        let total = 1usize << n;
        let mut sum = 0.0;
        for p in 0..total {
            let ins: Vec<bool> = (0..n).map(|i| p >> i & 1 == 1).collect();
            let gv = benchgen::decode(&golden.eval(&ins)) as f64;
            let av = benchgen::decode(&approx.eval(&ins)) as f64;
            sum += (gv - av).abs();
        }
        sum / total as f64
    }

    #[test]
    fn exact_med_matches_brute_force() {
        let golden = benchgen::adders::rca(3);
        let mut approx = golden.clone();
        // Corrupt an internal gate.
        let mid = approx.and_ids().nth(4).unwrap();
        approx.replace(mid, aig::Lit::FALSE).unwrap();
        approx.cleanup().unwrap();
        let med = exact::mean_error_distance(&golden, &approx, 1 << 20).unwrap();
        let brute = brute_med(&golden, &approx);
        assert!((med - brute).abs() < 1e-9, "{med} vs {brute}");
        assert!(med > 0.0);
    }

    #[test]
    fn exact_med_zero_for_identical() {
        let g = benchgen::multipliers::array_multiplier(2);
        assert_eq!(
            exact::mean_error_distance(&g, &g.clone(), 1 << 20).unwrap(),
            0.0
        );
    }

    #[test]
    fn exact_med_of_constant_output_flip() {
        // Flipping the LSB output inverts it: |diff| = 1 always.
        let golden = benchgen::adders::rca(2);
        let mut approx = golden.clone();
        let lsb = approx.outputs()[0].lit;
        approx.set_output(0, !lsb).unwrap();
        let med = exact::mean_error_distance(&golden, &approx, 1 << 20).unwrap();
        assert!((med - 1.0).abs() < 1e-12);
    }
}
