use aig::{Aig, Node as AigNode};
use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD function inside a [`Manager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BddRef(u32);

impl BddRef {
    const ZERO: BddRef = BddRef(0);
    const ONE: BddRef = BddRef(1);
}

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The manager exceeded its node budget; the payload is the limit.
    NodeLimit(usize),
    /// A variable index was out of range.
    VarOutOfRange(usize),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit(l) => write!(f, "BDD node limit of {l} exceeded"),
            BddError::VarOutOfRange(v) => write!(f, "variable {v} out of range"),
        }
    }
}

impl std::error::Error for BddError {}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

const OP_AND: u8 = 0;
const OP_XOR: u8 = 1;

/// A reduced ordered BDD manager with hash-consing, an operation cache,
/// and a hard node budget. Variable order is the input index order.
#[derive(Debug)]
pub struct Manager {
    n_vars: usize,
    node_limit: usize,
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    op_cache: HashMap<(u8, u32, u32), u32>,
    not_cache: HashMap<u32, u32>,
}

impl Manager {
    /// Creates a manager for `n_vars` variables with a `node_limit`
    /// budget.
    pub fn new(n_vars: usize, node_limit: usize) -> Self {
        let sentinel = Node {
            var: u32::MAX,
            low: BddRef::ZERO,
            high: BddRef::ZERO,
        };
        Manager {
            n_vars,
            node_limit,
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            op_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// The constant-false function.
    pub fn zero() -> BddRef {
        BddRef::ZERO
    }

    /// The constant-true function.
    pub fn one() -> BddRef {
        BddRef::ONE
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Total nodes allocated (including the two terminals).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `i`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VarOutOfRange`] if `i >= n_vars`.
    pub fn var(&mut self, i: usize) -> Result<BddRef, BddError> {
        if i >= self.n_vars {
            return Err(BddError::VarOutOfRange(i));
        }
        self.mk(i as u32, BddRef::ZERO, BddRef::ONE)
    }

    fn mk(&mut self, var: u32, low: BddRef, high: BddRef) -> Result<BddRef, BddError> {
        if low == high {
            return Ok(low);
        }
        if let Some(&id) = self.unique.get(&(var, low.0, high.0)) {
            return Ok(BddRef(id));
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::NodeLimit(self.node_limit));
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low.0, high.0), id);
        Ok(BddRef(id))
    }

    fn var_of(&self, f: BddRef) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// The complement of `f`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on budget exhaustion.
    pub fn not(&mut self, f: BddRef) -> Result<BddRef, BddError> {
        match f {
            BddRef::ZERO => return Ok(BddRef::ONE),
            BddRef::ONE => return Ok(BddRef::ZERO),
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&f.0) {
            return Ok(BddRef(r));
        }
        let n = self.nodes[f.0 as usize];
        let low = self.not(n.low)?;
        let high = self.not(n.high)?;
        let r = self.mk(n.var, low, high)?;
        self.not_cache.insert(f.0, r.0);
        Ok(r)
    }

    /// The conjunction of `f` and `g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on budget exhaustion.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        // Terminal rules.
        if f == BddRef::ZERO || g == BddRef::ZERO {
            return Ok(BddRef::ZERO);
        }
        if f == BddRef::ONE {
            return Ok(g);
        }
        if g == BddRef::ONE || f == g {
            return Ok(f);
        }
        let key = (OP_AND, f.0.min(g.0), f.0.max(g.0));
        if let Some(&r) = self.op_cache.get(&key) {
            return Ok(BddRef(r));
        }
        let r = self.apply_step(f, g, OP_AND)?;
        self.op_cache.insert(key, r.0);
        Ok(r)
    }

    /// The exclusive-or of `f` and `g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on budget exhaustion.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        if f == g {
            return Ok(BddRef::ZERO);
        }
        if f == BddRef::ZERO {
            return Ok(g);
        }
        if g == BddRef::ZERO {
            return Ok(f);
        }
        if f == BddRef::ONE {
            return self.not(g);
        }
        if g == BddRef::ONE {
            return self.not(f);
        }
        let key = (OP_XOR, f.0.min(g.0), f.0.max(g.0));
        if let Some(&r) = self.op_cache.get(&key) {
            return Ok(BddRef(r));
        }
        let r = self.apply_step(f, g, OP_XOR)?;
        self.op_cache.insert(key, r.0);
        Ok(r)
    }

    /// The disjunction of `f` and `g`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on budget exhaustion.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        let nf = self.not(f)?;
        let ng = self.not(g)?;
        let n = self.and(nf, ng)?;
        self.not(n)
    }

    fn apply_step(&mut self, f: BddRef, g: BddRef, op: u8) -> Result<BddRef, BddError> {
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let var = vf.min(vg);
        let (f_low, f_high) = if vf == var {
            let n = self.nodes[f.0 as usize];
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_low, g_high) = if vg == var {
            let n = self.nodes[g.0 as usize];
            (n.low, n.high)
        } else {
            (g, g)
        };
        let (low, high) = match op {
            OP_AND => (self.and(f_low, g_low)?, self.and(f_high, g_high)?),
            _ => (self.xor(f_low, g_low)?, self.xor(f_high, g_high)?),
        };
        self.mk(var, low, high)
    }

    /// Builds BDDs for every primary output of `aig` (whose input count
    /// must match `n_vars`).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's input count differs from the manager's or
    /// the graph is cyclic.
    pub fn build_outputs(&mut self, aig: &Aig) -> Result<Vec<BddRef>, BddError> {
        assert_eq!(aig.n_pis(), self.n_vars, "input count mismatch");
        let order = aig.topo_order().expect("acyclic");
        let live = aig.live_mask();
        let mut map: Vec<Option<BddRef>> = vec![None; aig.n_nodes()];
        map[0] = Some(BddRef::ZERO);
        for id in order {
            if !live[id.index()] {
                continue;
            }
            match *aig.node(id) {
                AigNode::Const0 => {}
                AigNode::Input(i) => map[id.index()] = Some(self.var(i as usize)?),
                AigNode::And(a, b) => {
                    let fa = self.edge(&map, a)?;
                    let fb = self.edge(&map, b)?;
                    map[id.index()] = Some(self.and(fa, fb)?);
                }
            }
        }
        let mut outs = Vec::with_capacity(aig.n_pos());
        for o in aig.outputs() {
            let base = map[o.lit.node().index()].expect("output drivers are live");
            outs.push(if o.lit.is_neg() { self.not(base)? } else { base });
        }
        Ok(outs)
    }

    fn edge(&mut self, map: &[Option<BddRef>], lit: aig::Lit) -> Result<BddRef, BddError> {
        let base = map[lit.node().index()].expect("fanins built first");
        if lit.is_neg() {
            self.not(base)
        } else {
            Ok(base)
        }
    }

    /// The density of `f`: the fraction of the `2^n_vars` assignments on
    /// which `f` is true (`satcount / 2^n`).
    pub fn density(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.density_rec(f, &mut memo)
    }

    fn density_rec(&self, f: BddRef, memo: &mut HashMap<u32, f64>) -> f64 {
        match f {
            BddRef::ZERO => return 0.0,
            BddRef::ONE => return 1.0,
            _ => {}
        }
        if let Some(&d) = memo.get(&f.0) {
            return d;
        }
        let n = self.nodes[f.0 as usize];
        let d = 0.5 * (self.density_rec(n.low, memo) + self.density_rec(n.high, memo));
        memo.insert(f.0, d);
        d
    }

    /// Evaluates `f` under a complete variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != n_vars`.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars);
        let mut cur = f;
        loop {
            match cur {
                BddRef::ZERO => return false,
                BddRef::ONE => return true,
                _ => {
                    let n = self.nodes[cur.0 as usize];
                    cur = if assignment[n.var as usize] {
                        n.high
                    } else {
                        n.low
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_rules() {
        let mut m = Manager::new(2, 1000);
        let a = m.var(0).unwrap();
        assert_eq!(m.and(a, Manager::zero()).unwrap(), Manager::zero());
        assert_eq!(m.and(a, Manager::one()).unwrap(), a);
        assert_eq!(m.xor(a, a).unwrap(), Manager::zero());
        let na = m.not(a).unwrap();
        assert_eq!(m.and(a, na).unwrap(), Manager::zero());
        assert_eq!(m.or(a, na).unwrap(), Manager::one());
        assert!(m.var(5).is_err());
    }

    #[test]
    fn canonicity_of_equivalent_formulas() {
        // a & b == !( !a | !b ) must be the *same* node.
        let mut m = Manager::new(2, 1000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let or = m.or(na, nb).unwrap();
        let demorgan = m.not(or).unwrap();
        assert_eq!(ab, demorgan);
    }

    #[test]
    fn density_counts_models() {
        let mut m = Manager::new(3, 1000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        assert_eq!(m.density(ab), 0.25);
        let abc = m.and(ab, c).unwrap();
        assert_eq!(m.density(abc), 0.125);
        let x = m.xor(a, b).unwrap();
        assert_eq!(m.density(x), 0.5);
        assert_eq!(m.density(Manager::one()), 1.0);
    }

    #[test]
    fn build_matches_circuit_eval() {
        let g = benchgen::adders::rca(3);
        let mut m = Manager::new(6, 1 << 16);
        let outs = m.build_outputs(&g).unwrap();
        for p in 0..64usize {
            let ins: Vec<bool> = (0..6).map(|i| p >> i & 1 == 1).collect();
            let want = g.eval(&ins);
            for (o, &f) in outs.iter().enumerate() {
                assert_eq!(m.eval(f, &ins), want[o], "output {o} pattern {p}");
            }
        }
    }

    #[test]
    fn node_budget_stops_construction() {
        let g = benchgen::multipliers::wallace_multiplier(6);
        let mut m = Manager::new(12, 64);
        assert!(matches!(m.build_outputs(&g), Err(BddError::NodeLimit(64))));
    }
}
