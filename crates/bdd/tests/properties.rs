//! Property tests: BDDs built from random circuits must agree with the
//! reference evaluator on every assignment, and density must equal the
//! exhaustive model count.

use aig::{Aig, Lit};
use bdd::{exact, Manager};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    n_pis: usize,
    steps: Vec<(usize, bool, usize, bool)>,
    outputs: Vec<(usize, bool)>,
}

fn build(recipe: &Recipe) -> Aig {
    let mut g = Aig::new("random", recipe.n_pis);
    let mut lits: Vec<Lit> = (0..recipe.n_pis).map(|i| g.pi(i)).collect();
    lits.push(Lit::TRUE);
    for &(ai, an, bi, bn) in &recipe.steps {
        let a = lits[ai % lits.len()].xor_neg(an);
        let b = lits[bi % lits.len()].xor_neg(bn);
        lits.push(g.and(a, b));
    }
    for &(oi, on) in &recipe.outputs {
        let l = lits[oi % lits.len()].xor_neg(on);
        g.add_output(l, format!("y{}", g.n_pos()));
    }
    g
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..7, 1usize..50, 1usize..5).prop_flat_map(|(n_pis, n_steps, n_outs)| {
        (
            proptest::collection::vec(
                (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
                n_steps,
            ),
            proptest::collection::vec((any::<usize>(), any::<bool>()), n_outs),
        )
            .prop_map(move |(steps, outputs)| Recipe {
                n_pis,
                steps,
                outputs,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bdd_agrees_with_eval_everywhere(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let mut m = Manager::new(recipe.n_pis, 1 << 20);
        let outs = m.build_outputs(&g).expect("small circuits fit");
        for p in 0..1usize << recipe.n_pis {
            let ins: Vec<bool> = (0..recipe.n_pis).map(|i| p >> i & 1 == 1).collect();
            let want = g.eval(&ins);
            for (o, &f) in outs.iter().enumerate() {
                prop_assert_eq!(m.eval(f, &ins), want[o], "output {} pattern {}", o, p);
            }
        }
    }

    #[test]
    fn density_equals_exhaustive_count(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let mut m = Manager::new(recipe.n_pis, 1 << 20);
        let outs = m.build_outputs(&g).expect("small circuits fit");
        let n = 1usize << recipe.n_pis;
        for (o, &f) in outs.iter().enumerate() {
            let count = (0..n)
                .filter(|&p| {
                    let ins: Vec<bool> =
                        (0..recipe.n_pis).map(|i| p >> i & 1 == 1).collect();
                    g.eval(&ins)[o]
                })
                .count();
            let density = m.density(f);
            prop_assert!(
                (density - count as f64 / n as f64).abs() < 1e-12,
                "output {}: density {} vs count {}/{}", o, density, count, n
            );
        }
    }

    #[test]
    fn exact_error_rate_matches_brute_force(
        recipe in recipe_strategy(),
        corrupt in any::<usize>(),
    ) {
        let golden = build(&recipe);
        if golden.n_ands() == 0 {
            return Ok(());
        }
        let ands: Vec<_> = golden.and_ids().collect();
        let mut approx = golden.clone();
        approx.replace(ands[corrupt % ands.len()], Lit::TRUE).unwrap();
        let (approx, _) = approx.compact().unwrap();

        let er = exact::error_rate(&golden, &approx, 1 << 20).unwrap();
        let n = 1usize << recipe.n_pis;
        let brute = (0..n)
            .filter(|&p| {
                let ins: Vec<bool> = (0..recipe.n_pis).map(|i| p >> i & 1 == 1).collect();
                golden.eval(&ins) != approx.eval(&ins)
            })
            .count() as f64
            / n as f64;
        prop_assert!((er - brute).abs() < 1e-12, "exact {} vs brute {}", er, brute);
    }
}
