use crate::graph::Graph;

/// Exact maximum independent set via branch and bound.
///
/// Branches on a maximum-residual-degree vertex (include it / exclude it)
/// and prunes with the trivial `|current| + |alive|` bound. Exponential
/// in the worst case; intended for graphs up to roughly 60 vertices, as
/// produced by the AccALS independence-selection step on small circuits.
pub fn exact(graph: &Graph) -> Vec<usize> {
    let n = graph.n_vertices();
    let mut ctx = Ctx {
        graph,
        best: Vec::new(),
        current: Vec::new(),
    };
    let alive = vec![true; n];
    ctx.branch(alive, n);
    ctx.best
}

struct Ctx<'a> {
    graph: &'a Graph,
    best: Vec<usize>,
    current: Vec<usize>,
}

impl Ctx<'_> {
    fn branch(&mut self, mut alive: Vec<bool>, mut n_alive: usize) {
        // Everything this frame pushes onto `current` (simplification
        // takes and the include-branch vertex) is unwound before return.
        let base = self.current.len();

        // Simplification: repeatedly take vertices of residual degree 0
        // or 1 (always safe for MIS).
        loop {
            if self.current.len() + n_alive <= self.best.len() {
                self.current.truncate(base);
                return; // bound
            }
            let mut simplified = false;
            for v in 0..alive.len() {
                if !alive[v] {
                    continue;
                }
                let deg = self.graph.neighbors(v).filter(|&u| alive[u]).count();
                if deg <= 1 {
                    self.take(v, &mut alive, &mut n_alive);
                    simplified = true;
                    break;
                }
            }
            if !simplified {
                break;
            }
        }
        if n_alive == 0 {
            if self.current.len() > self.best.len() {
                self.best = self.current.clone();
            }
            self.current.truncate(base);
            return;
        }
        // Branch on a maximum-degree vertex.
        let v = (0..alive.len())
            .filter(|&v| alive[v])
            .max_by_key(|&v| self.graph.neighbors(v).filter(|&u| alive[u]).count())
            .expect("n_alive > 0");

        // Branch 1: include v.
        {
            let mut a = alive.clone();
            let mut n = n_alive;
            self.take(v, &mut a, &mut n);
            self.branch(a, n);
            self.current.pop();
        }
        // Branch 2: exclude v.
        {
            alive[v] = false;
            self.branch(alive, n_alive - 1);
        }
        self.current.truncate(base);
    }

    fn take(&mut self, v: usize, alive: &mut [bool], n_alive: &mut usize) {
        self.current.push(v);
        alive[v] = false;
        *n_alive -= 1;
        for u in self.graph.neighbors(v) {
            if alive[u] {
                alive[u] = false;
                *n_alive -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force over all subsets (graphs with <= 20 vertices).
    fn brute_force(graph: &Graph) -> usize {
        let n = graph.n_vertices();
        assert!(n <= 20);
        let mut best = 0;
        'subsets: for mask in 0u32..1 << n {
            let set: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
            for (i, &u) in set.iter().enumerate() {
                for &v in &set[i + 1..] {
                    if graph.has_edge(u, v) {
                        continue 'subsets;
                    }
                }
            }
            best = best.max(set.len());
        }
        best
    }

    #[test]
    fn exact_matches_brute_force_on_petersen() {
        // The Petersen graph: MIS size 4.
        let edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0), // outer cycle
            (5, 7), (7, 9), (9, 6), (6, 8), (8, 5), // inner star
            (0, 5), (1, 6), (2, 7), (3, 8), (4, 9), // spokes
        ];
        let g = Graph::from_edges(10, edges);
        let set = exact(&g);
        assert!(g.is_independent(&set));
        assert_eq!(set.len(), 4);
        assert_eq!(set.len(), brute_force(&g));
    }

    #[test]
    fn exact_handles_disconnected_graphs() {
        let g = Graph::from_edges(7, [(0, 1), (2, 3), (4, 5)]);
        assert_eq!(exact(&g).len(), 4); // one per edge plus the isolated 6
    }
}
