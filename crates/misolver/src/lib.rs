//! Maximum independent set (MIS) solvers.
//!
//! AccALS formulates the selection of mutually independent local
//! approximate changes as a MIS problem and solves it with KaMIS in the
//! original paper. This crate is the self-contained stand-in: an exact
//! branch-and-bound solver for small graphs and a greedy + iterated
//! (1,2)-swap local search for larger ones. The instances AccALS produces
//! are small (at most a few hundred vertices), where these solvers are
//! near-optimal.
//!
//! # Example
//!
//! ```
//! use misolver::{solve, Graph, MisStrategy};
//!
//! // A 5-cycle: the maximum independent set has 2 vertices.
//! let mut g = Graph::new(5);
//! for v in 0..5 {
//!     g.add_edge(v, (v + 1) % 5);
//! }
//! let set = solve(&g, MisStrategy::Exact);
//! assert_eq!(set.len(), 2);
//! assert!(g.is_independent(&set));
//! ```

mod exact;
mod graph;
mod greedy;
mod local;

pub use exact::exact;
pub use graph::Graph;
pub use greedy::greedy_min_degree;
pub use local::local_search;

/// Which MIS algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MisStrategy {
    /// Greedy minimum-degree construction only.
    Greedy,
    /// Greedy construction followed by iterated (1,2)-swap local search.
    LocalSearch {
        /// Number of perturb-and-improve iterations.
        iterations: usize,
        /// RNG seed for the perturbation step.
        seed: u64,
    },
    /// Exact branch-and-bound (exponential worst case; intended for
    /// graphs up to roughly 60 vertices).
    Exact,
    /// Exact for graphs of at most 40 vertices, local search otherwise.
    /// This is the default used by the AccALS flow.
    #[default]
    Auto,
}

/// Computes an independent set of `graph` that is as large as the chosen
/// strategy can find (always maximal; the exact strategy returns a
/// maximum one). Vertices are returned in ascending order.
pub fn solve(graph: &Graph, strategy: MisStrategy) -> Vec<usize> {
    let mut set = match strategy {
        MisStrategy::Greedy => greedy_min_degree(graph),
        MisStrategy::LocalSearch { iterations, seed } => {
            let init = greedy_min_degree(graph);
            local_search(graph, init, iterations, seed)
        }
        MisStrategy::Exact => exact(graph),
        MisStrategy::Auto => {
            if graph.n_vertices() <= 40 {
                exact(graph)
            } else {
                let init = greedy_min_degree(graph);
                local_search(graph, init, 20 * graph.n_vertices(), 0xACCA15)
            }
        }
    };
    set.sort_unstable();
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn known_optima() {
        assert_eq!(solve(&cycle(5), MisStrategy::Exact).len(), 2);
        assert_eq!(solve(&cycle(6), MisStrategy::Exact).len(), 3);
        assert_eq!(solve(&complete(7), MisStrategy::Exact).len(), 1);
        // Star graph: center connected to all leaves.
        let mut star = Graph::new(8);
        for v in 1..8 {
            star.add_edge(0, v);
        }
        assert_eq!(solve(&star, MisStrategy::Exact).len(), 7);
    }

    #[test]
    fn empty_graph_takes_everything() {
        let g = Graph::new(9);
        for strategy in [
            MisStrategy::Greedy,
            MisStrategy::Exact,
            MisStrategy::Auto,
            MisStrategy::LocalSearch {
                iterations: 10,
                seed: 1,
            },
        ] {
            assert_eq!(solve(&g, strategy).len(), 9);
        }
    }

    #[test]
    fn all_strategies_return_independent_maximal_sets() {
        let g = cycle(30);
        for strategy in [
            MisStrategy::Greedy,
            MisStrategy::Auto,
            MisStrategy::LocalSearch {
                iterations: 50,
                seed: 3,
            },
        ] {
            let set = solve(&g, strategy);
            assert!(g.is_independent(&set));
            assert!(g.is_maximal(&set));
        }
    }
}
