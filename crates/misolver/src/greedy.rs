use crate::graph::Graph;

/// Greedy minimum-residual-degree independent set construction.
///
/// Repeatedly selects an alive vertex of minimum degree in the residual
/// graph and removes it together with its neighbors. Runs in
/// `O(V^2 + E)`, which is plenty for the small conflict graphs AccALS
/// produces. The result is always maximal.
pub fn greedy_min_degree(graph: &Graph) -> Vec<usize> {
    let n = graph.n_vertices();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut remaining = n;
    let mut set = Vec::new();
    while remaining > 0 {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| degree[v])
            .expect("remaining > 0 implies an alive vertex");
        set.push(v);
        // Remove v and its alive neighbors from the residual graph.
        let mut removed = vec![v];
        for u in graph.neighbors(v) {
            if alive[u] {
                removed.push(u);
            }
        }
        for &r in &removed {
            alive[r] = false;
            remaining -= 1;
        }
        for &r in &removed {
            for w in graph.neighbors(r) {
                if alive[w] {
                    degree[w] -= 1;
                }
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_independent_and_maximal() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let set = greedy_min_degree(&g);
        assert!(g.is_independent(&set));
        assert!(g.is_maximal(&set));
    }

    #[test]
    fn greedy_prefers_low_degree() {
        // Path 0-1-2: picking the endpoints (degree 1) gives size 2.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let set = greedy_min_degree(&g);
        assert_eq!(set.len(), 2);
    }
}
