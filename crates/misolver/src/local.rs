use crate::graph::Graph;
use prng::rngs::StdRng;
use prng::{Rng, SeedableRng};

/// Iterated (1,2)-swap local search, in the spirit of the
/// Andrade–Resende–Werneck heuristic that underlies KaMIS.
///
/// Starting from `init` (made maximal first), the search repeatedly
/// applies 2-improvements — remove one solution vertex and insert two of
/// its "tight" neighbors — and, when stuck, perturbs the solution by
/// force-inserting a random vertex. The best solution seen across
/// `iterations` perturbation rounds is returned; it is always maximal
/// and never worse than `init`.
pub fn local_search(graph: &Graph, init: Vec<usize>, iterations: usize, seed: u64) -> Vec<usize> {
    let n = graph.n_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = State::new(graph, &init);
    state.make_maximal(graph);
    state.improve(graph);
    let mut best = state.solution();
    for _ in 0..iterations {
        if n == 0 {
            break;
        }
        let v = rng.gen_range(0..n);
        state.force_insert(graph, v);
        state.make_maximal(graph);
        state.improve(graph);
        if state.size > best.len() {
            best = state.solution();
        } else {
            // Restart from the best-known solution to keep the walk near
            // good regions.
            state = State::new(graph, &best);
        }
    }
    best
}

struct State {
    in_set: Vec<bool>,
    /// Number of solution neighbors for every vertex.
    conflicts: Vec<u32>,
    size: usize,
}

impl State {
    fn new(graph: &Graph, set: &[usize]) -> Self {
        let n = graph.n_vertices();
        let mut s = State {
            in_set: vec![false; n],
            conflicts: vec![0; n],
            size: 0,
        };
        for &v in set {
            if !s.in_set[v] && s.conflicts[v] == 0 {
                s.insert(graph, v);
            }
        }
        s
    }

    fn insert(&mut self, graph: &Graph, v: usize) {
        debug_assert!(!self.in_set[v]);
        self.in_set[v] = true;
        self.size += 1;
        for u in graph.neighbors(v) {
            self.conflicts[u] += 1;
        }
    }

    fn remove(&mut self, graph: &Graph, v: usize) {
        debug_assert!(self.in_set[v]);
        self.in_set[v] = false;
        self.size -= 1;
        for u in graph.neighbors(v) {
            self.conflicts[u] -= 1;
        }
    }

    /// Inserts `v` by evicting its solution neighbors first.
    fn force_insert(&mut self, graph: &Graph, v: usize) {
        if self.in_set[v] {
            return;
        }
        let evict: Vec<usize> = graph.neighbors(v).filter(|&u| self.in_set[u]).collect();
        for u in evict {
            self.remove(graph, u);
        }
        self.insert(graph, v);
    }

    fn make_maximal(&mut self, graph: &Graph) {
        for v in 0..graph.n_vertices() {
            if !self.in_set[v] && self.conflicts[v] == 0 {
                self.insert(graph, v);
            }
        }
    }

    /// Applies 2-improvements until a fixpoint: for each solution vertex
    /// `x`, look for two non-adjacent vertices whose only solution
    /// neighbor is `x`; swapping them in gains one vertex.
    fn improve(&mut self, graph: &Graph) {
        let mut changed = true;
        while changed {
            changed = false;
            for x in 0..graph.n_vertices() {
                if !self.in_set[x] {
                    continue;
                }
                let tight: Vec<usize> = graph
                    .neighbors(x)
                    .filter(|&u| !self.in_set[u] && self.conflicts[u] == 1)
                    .collect();
                if tight.len() < 2 {
                    continue;
                }
                'pairs: for (i, &a) in tight.iter().enumerate() {
                    for &b in &tight[i + 1..] {
                        if !graph.has_edge(a, b) {
                            self.remove(graph, x);
                            self.insert(graph, a);
                            self.insert(graph, b);
                            self.make_maximal(graph);
                            changed = true;
                            break 'pairs;
                        }
                    }
                }
            }
        }
    }

    fn solution(&self) -> Vec<usize> {
        (0..self.in_set.len()).filter(|&v| self.in_set[v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_min_degree;

    #[test]
    fn local_search_improves_a_bad_start() {
        // Path 0-1-2-3-4: optimum is {0,2,4} (size 3); start from {1}.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let set = local_search(&g, vec![1], 50, 7);
        assert_eq!(set.len(), 3);
        assert!(g.is_independent(&set));
    }

    #[test]
    fn local_search_never_worse_than_greedy() {
        let g = Graph::from_edges(
            8,
            [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4), (0, 4)],
        );
        let greedy = greedy_min_degree(&g);
        let improved = local_search(&g, greedy.clone(), 100, 11);
        assert!(improved.len() >= greedy.len());
        assert!(g.is_independent(&improved));
        assert!(g.is_maximal(&improved));
    }
}
