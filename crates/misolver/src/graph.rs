/// A simple undirected graph on vertices `0..n`, stored as adjacency
/// lists. Parallel edges and self-loops are ignored.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    n_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are
    /// silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.adj.len() && v < self.adj.len(), "vertex out of range");
        if u == v || self.adj[u].contains(&(v as u32)) {
            return;
        }
        self.adj[u].push(v as u32);
        self.adj[v].push(u as u32);
        self.n_edges += 1;
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().map(|&u| u as usize)
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&(v as u32))
    }

    /// Whether `set` is an independent set (no two members adjacent).
    pub fn is_independent(&self, set: &[usize]) -> bool {
        let mut in_set = vec![false; self.n_vertices()];
        for &v in set {
            in_set[v] = true;
        }
        set.iter()
            .all(|&v| self.neighbors(v).all(|u| !in_set[u]))
    }

    /// Whether `set` is maximal: no vertex outside it can be added while
    /// keeping independence.
    pub fn is_maximal(&self, set: &[usize]) -> bool {
        let mut in_set = vec![false; self.n_vertices()];
        for &v in set {
            in_set[v] = true;
        }
        (0..self.n_vertices()).all(|v| {
            in_set[v] || self.neighbors(v).any(|u| in_set[u])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_dedupe_and_ignore_self_loops() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn independence_and_maximality_checks() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(g.is_independent(&[0, 2]));
        assert!(!g.is_independent(&[0, 1]));
        assert!(g.is_maximal(&[0, 2]));
        assert!(!g.is_maximal(&[1])); // vertex 3 could be added
    }
}
