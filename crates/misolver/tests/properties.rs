//! Property tests for the MIS solvers: solutions are always independent
//! and maximal, the exact solver matches brute force on small random
//! graphs, and heuristics never beat the exact optimum.

use misolver::{exact, greedy_min_degree, local_search, solve, Graph, MisStrategy};
use proptest::prelude::*;

fn random_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<(usize, usize)>(), 0..n * 2)
            .prop_map(move |edges| {
                Graph::from_edges(n, edges.into_iter().map(|(u, v)| (u % n, v % n)))
            })
    })
}

fn brute_force(graph: &Graph) -> usize {
    let n = graph.n_vertices();
    let mut best = 0;
    'subsets: for mask in 0u32..1 << n {
        let set: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if graph.has_edge(u, v) {
                    continue 'subsets;
                }
            }
        }
        best = best.max(set.len());
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_matches_brute_force(g in random_graph(12)) {
        let set = exact(&g);
        prop_assert!(g.is_independent(&set));
        prop_assert_eq!(set.len(), brute_force(&g));
    }

    #[test]
    fn heuristics_are_valid_and_bounded_by_exact(g in random_graph(14)) {
        let opt = exact(&g).len();
        let greedy = greedy_min_degree(&g);
        prop_assert!(g.is_independent(&greedy));
        prop_assert!(g.is_maximal(&greedy));
        prop_assert!(greedy.len() <= opt);

        let ls = local_search(&g, greedy.clone(), 30, 5);
        prop_assert!(g.is_independent(&ls));
        prop_assert!(g.is_maximal(&ls));
        prop_assert!(ls.len() >= greedy.len());
        prop_assert!(ls.len() <= opt);
    }

    #[test]
    fn auto_strategy_is_optimal_for_small_graphs(g in random_graph(12)) {
        let set = solve(&g, MisStrategy::Auto);
        prop_assert_eq!(set.len(), brute_force(&g));
        // Result is sorted.
        prop_assert!(set.windows(2).all(|w| w[0] < w[1]));
    }
}

proptest! {
    // The wide soak: 1000 seeded cases on graphs up to 18 vertices.
    // Brute force is too slow here, so `exact` (verified against brute
    // force above on <=12 vertices) serves as the optimum reference.
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn heuristics_are_valid_on_wider_graphs(g in random_graph(18)) {
        let opt = exact(&g);
        prop_assert!(g.is_independent(&opt));
        prop_assert!(g.is_maximal(&opt));

        let greedy = greedy_min_degree(&g);
        prop_assert!(g.is_independent(&greedy));
        prop_assert!(g.is_maximal(&greedy));
        prop_assert!(greedy.len() <= opt.len());

        let ls = local_search(&g, greedy.clone(), 30, 7);
        prop_assert!(g.is_independent(&ls));
        prop_assert!(g.is_maximal(&ls));
        prop_assert!(ls.len() >= greedy.len());
        prop_assert!(ls.len() <= opt.len());
    }
}
