//! A std-only scoped thread pool for deterministic data-parallel loops.
//!
//! The pool keeps a fixed set of parked worker threads alive for the
//! process lifetime and hands them *scoped* jobs: closures that borrow
//! from the submitting stack frame. Safety rests on one invariant —
//! [`ThreadPool::run`] does not return until every worker has finished
//! the job — which lets hot loops borrow their inputs without `Arc` or
//! cloning. Work is distributed by atomic chunk claiming (a shared
//! counter over fixed chunk boundaries), so scheduling is dynamic but
//! every output lands in a slot addressed by item index: results are
//! bit-identical across thread counts and runs, including `threads=1`,
//! which bypasses the pool machinery entirely.
//!
//! Thread count comes from `ACCALS_THREADS` (default: available
//! parallelism) for the shared [`global`] pool; explicit pools take it
//! from [`ThreadPool::new`].

pub mod steal;

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable controlling the size of the [`global`] pool.
pub const THREADS_ENV: &str = "ACCALS_THREADS";

/// The thread count the [`global`] pool uses: `ACCALS_THREADS` if set to
/// a positive integer, otherwise the machine's available parallelism.
/// A set-but-malformed value (empty, non-numeric, or zero) falls back
/// to the default with a warning on stderr rather than silently — a
/// typo'd `ACCALS_THREADS=1O` changing a benchmark's thread count is
/// exactly the kind of surprise a measurement run cannot afford.
pub fn configured_threads() -> usize {
    parse_thread_env(THREADS_ENV, std::env::var(THREADS_ENV).ok().as_deref(), default_threads())
}

/// Parses a thread-count environment override: `raw` is the variable's
/// value (`None` when unset), `default` the fallback. Malformed values
/// — anything but a positive integer — warn once on stderr, naming the
/// variable and the value, and return `default`. Pure in its inputs so
/// the policy is unit-testable without touching process environment.
pub fn parse_thread_env(var: &str, raw: Option<&str>, default: usize) -> usize {
    let Some(raw) = raw else { return default };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!(
                "warning: {var}={raw:?} is not a positive integer; \
                 using default of {default} threads"
            );
            default
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, created on first use with
/// [`configured_threads`] threads. Changing `ACCALS_THREADS` after the
/// first call has no effect.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(configured_threads()))
}

/// A raw pointer that may cross threads. The pool's completion barrier
/// plus disjoint index ranges make each use sound; every construction
/// site documents its disjointness argument.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor rather than field access so closures capture the whole
    /// `Sync` wrapper, not the bare `*mut` (2021 disjoint capture).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// A scoped job: a borrowed closure every participant runs once,
/// claiming chunks from a shared counter until the work is drained.
/// The pointee lives on the submitter's stack; it stays valid because
/// `run` blocks until `remaining == 0`.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn() + Sync));
unsafe impl Send for Job {}

struct JobSlot {
    /// Bumped once per submitted job so sleeping workers can tell a new
    /// job from a spurious wakeup.
    generation: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current job.
    remaining: usize,
    /// First panic payload raised inside a worker, rethrown by `run`.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    slot: Mutex<JobSlot>,
    /// Signals workers that `generation` moved.
    new_job: Condvar,
    /// Signals the submitter that `remaining` hit zero.
    done: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size pool of parked workers executing scoped jobs. See the
/// crate docs for the determinism and safety model.
pub struct ThreadPool {
    shared: &'static Shared,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serializes `run` calls: the pool has a single job slot.
    submit: Mutex<()>,
}

impl ThreadPool {
    /// Creates a pool that computes with `threads` threads in total: the
    /// calling thread participates in every job, so `threads - 1`
    /// workers are spawned. `threads <= 1` spawns nothing and every
    /// `par_*` method degenerates to an inline serial loop.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        // The shared state is leaked rather than Arc'd so worker loops
        // need no reference counting on the hot path; pools live for the
        // process in practice (tests create a handful — bounded leak).
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(JobSlot {
                generation: 0,
                job: None,
                remaining: 0,
                panic: None,
            }),
            new_job: Condvar::new(),
            done: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }));
        let workers = (1..threads)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("parkit-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn parkit worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
            submit: Mutex::new(()),
        }
    }

    /// Total threads participating in each job (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work` on every participant (workers + the calling thread)
    /// exactly once each, returning after all have finished. `work` is
    /// expected to claim chunks from a shared counter until none remain.
    fn run(&self, work: &(dyn Fn() + Sync)) {
        debug_assert!(self.threads > 1, "run() is bypassed for serial pools");
        let _guard = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.generation += 1;
            // Erase the closure's lifetime; workers drop the pointer
            // before `remaining` reaches zero, and we block on that
            // below, so the borrow never outlives this call.
            slot.job = Some(Job(unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync)>(work)
            }));
            slot.remaining = self.workers.len();
            slot.panic = None;
            self.shared.new_job.notify_all();
        }
        // The caller participates; catch panics so we still wait for the
        // workers (they borrow from this frame) before unwinding.
        let mine = panic::catch_unwind(AssertUnwindSafe(work));
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        while slot.remaining > 0 {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
        let worker_panic = slot.panic.take();
        drop(slot);
        if let Err(payload) = mine {
            panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            panic::resume_unwind(payload);
        }
    }

    /// Maps `f` over `items`, returning outputs in input order. Output
    /// `i` is written into slot `i` regardless of which thread computed
    /// it, so the result is identical to the serial map.
    pub fn par_map_collect<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n < 2 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = auto_chunk(n, self.threads);
        let nchunks = n.div_ceil(chunk);
        let mut out: Vec<U> = Vec::with_capacity(n);
        let out_ptr = SendPtr(out.as_mut_ptr());
        let next = AtomicUsize::new(0);
        let filled = AtomicUsize::new(0);
        self.run(&|| loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let range = chunk_range(c, chunk, n);
            for i in range.clone() {
                // Disjoint: each index i belongs to exactly one chunk,
                // and each chunk is claimed by exactly one thread.
                unsafe { out_ptr.get().add(i).write(f(i, &items[i])) };
            }
            filled.fetch_add(range.len(), Ordering::Release);
        });
        assert_eq!(filled.load(Ordering::Acquire), n);
        // Every slot 0..n was written exactly once (asserted above).
        unsafe { out.set_len(n) };
        out
    }

    /// Runs `f` over disjoint mutable chunks of `items` with fixed
    /// boundaries (`chunk_size` apart, last chunk ragged). `f` receives
    /// the chunk index and the chunk, exactly as `chunks_mut` would
    /// yield them serially.
    pub fn par_chunks_mut<T, F>(&self, items: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = items.len();
        let chunk = chunk_size.max(1);
        let nchunks = n.div_ceil(chunk.max(1));
        if self.threads <= 1 || nchunks <= 1 {
            for (c, s) in items.chunks_mut(chunk).enumerate() {
                f(c, s);
            }
            return;
        }
        let base = SendPtr(items.as_mut_ptr());
        let next = AtomicUsize::new(0);
        self.run(&|| loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let range = chunk_range(c, chunk, n);
            // Disjoint: chunk ranges partition 0..n and each chunk is
            // claimed by exactly one thread.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
            f(c, slice);
        });
    }

    /// Computes one `U` per fixed-boundary chunk of `0..len` and returns
    /// them in chunk order. Callers fold the returned vector serially,
    /// which pins the reduction order: floating-point sums come out
    /// bit-identical for a given `chunk_size` at any thread count.
    pub fn par_chunk_results<U, F>(&self, len: usize, chunk_size: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, Range<usize>) -> U + Sync,
    {
        let chunk = chunk_size.max(1);
        let nchunks = len.div_ceil(chunk);
        if self.threads <= 1 || nchunks <= 1 {
            return (0..nchunks)
                .map(|c| f(c, chunk_range(c, chunk, len)))
                .collect();
        }
        let mut out: Vec<U> = Vec::with_capacity(nchunks);
        let out_ptr = SendPtr(out.as_mut_ptr());
        let next = AtomicUsize::new(0);
        let filled = AtomicUsize::new(0);
        self.run(&|| loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            // Disjoint: one slot per chunk, one claimant per chunk.
            unsafe { out_ptr.get().add(c).write(f(c, chunk_range(c, chunk, len))) };
            filled.fetch_add(1, Ordering::Release);
        });
        assert_eq!(filled.load(Ordering::Acquire), nchunks);
        unsafe { out.set_len(nchunks) };
        out
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake parked workers so they observe the flag.
        let _slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.new_job.notify_all();
        drop(_slot);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    break slot.job.expect("job present for new generation");
                }
                slot = shared.new_job.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
        let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(payload) = result {
            slot.panic.get_or_insert(payload);
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Chunk boundaries used by every `par_*` method: fixed, independent of
/// thread count, so per-chunk outputs (and thus reduction order) never
/// depend on scheduling.
fn chunk_range(c: usize, chunk: usize, len: usize) -> Range<usize> {
    let start = c * chunk;
    start..(start + chunk).min(len)
}

/// Picks a chunk size giving each thread several chunks to steal while
/// keeping claim traffic low. Depends only on `n` and the pool's
/// configured size — not on runtime scheduling — so it is deterministic.
fn auto_chunk(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_serial_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let par = pool.par_map_collect(&items, |_, &x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_mutates_every_element_once() {
        let pool = ThreadPool::new(4);
        let mut data: Vec<usize> = vec![0; 777];
        pool.par_chunks_mut(&mut data, 10, |c, s| {
            for (off, v) in s.iter_mut().enumerate() {
                *v = c * 10 + off + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn chunk_results_arrive_in_chunk_order() {
        let pool = ThreadPool::new(4);
        let out = pool.par_chunk_results(103, 10, |c, r| (c, r.start, r.end));
        assert_eq!(out.len(), 11);
        for (c, item) in out.iter().enumerate() {
            assert_eq!(*item, (c, c * 10, (c * 10 + 10).min(103)));
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        let vals: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reduce = |pool: &ThreadPool| -> f64 {
            pool.par_chunk_results(vals.len(), 64, |_, r| vals[r].iter().sum::<f64>())
                .into_iter()
                .sum()
        };
        let one = reduce(&ThreadPool::new(1));
        for threads in [2, 5, 8] {
            assert_eq!(
                one.to_bits(),
                reduce(&ThreadPool::new(threads)).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(3);
        let hits = AtomicU64::new(0);
        for round in 0..50u64 {
            let out = pool.par_map_collect(&[round; 64], |i, &r| {
                hits.fetch_add(1, Ordering::Relaxed);
                r + i as u64
            });
            assert_eq!(out[63], round + 63);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * 64);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_collect(&items, |_, &x| {
                assert!(x != 50, "boom at 50");
                x
            })
        }));
        assert!(result.is_err());
        // The pool must still schedule jobs after a panicked one.
        let ok = pool.par_map_collect(&items, |_, &x| x + 1);
        assert_eq!(ok[99], 100);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map_collect(&empty, |_, &x| x).is_empty());
        assert!(pool.par_chunk_results(0, 8, |_, r| r.len()).is_empty());
        let one = pool.par_map_collect(&[7u32], |_, &x| x * 2);
        assert_eq!(one, vec![14]);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn parse_thread_env_accepts_positive_integers() {
        assert_eq!(parse_thread_env("T", Some("1"), 8), 1);
        assert_eq!(parse_thread_env("T", Some("16"), 8), 16);
        assert_eq!(parse_thread_env("T", Some("  4 "), 8), 4);
    }

    #[test]
    fn parse_thread_env_unset_uses_default_silently() {
        assert_eq!(parse_thread_env("T", None, 8), 8);
    }

    #[test]
    fn parse_thread_env_malformed_falls_back_to_default() {
        // Each of these should also warn on stderr; the policy under
        // test here is the fallback, which must never produce a zero
        // or a surprising thread count.
        for bad in ["", "  ", "0", "-2", "1O", "sixteen", "4.5", "1e3"] {
            assert_eq!(parse_thread_env("T", Some(bad), 8), 8, "value {bad:?}");
        }
    }
}
