//! A work-stealing task queue for coarse-grained, self-replenishing jobs.
//!
//! The chunk-claiming loops in the crate root fit flat `for` loops whose
//! iteration space is known up front. Sweep scheduling is different: a
//! task (one cohort round) runs for milliseconds and *spawns successor
//! tasks* as it completes — the frontier grows and shrinks until the
//! whole job quiesces. [`StealQueue`] covers that shape with the classic
//! deque discipline: every worker owns a deque, pushes and pops its own
//! work LIFO (depth-first, cache-warm), and steals FIFO from a random
//! victim when its own deque runs dry (breadth-first, takes the
//! oldest — and usually largest — stranger task).
//!
//! Tasks here are orders of magnitude heavier than a lock, so the deques
//! are plain `Mutex<VecDeque>` — no lock-free Chase-Lev machinery, no
//! `unsafe`. Quiescence is a single atomic counter of live tasks
//! (queued + executing); a worker parks out of [`StealWorker::next_task`]
//! only when that counter hits zero, which cannot happen while any task
//! that might spawn successors is still running.
//!
//! Steal-victim order is drawn from a per-worker SplitMix64 stream, so a
//! fixed `(seed, worker)` pair replays the same victim sequence — useful
//! for reproducing scheduler-order bugs even though correct consumers
//! must not depend on placement.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 step — the same generator `prng` uses for seeding, inlined
/// here to keep `parkit` dependency-free.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A set of per-worker task deques with random stealing and a live-task
/// counter for quiescence detection.
///
/// `T` is one unit of work. The queue never executes tasks itself;
/// workers drive it through [`StealWorker`] handles obtained from
/// [`StealQueue::worker`].
#[derive(Debug)]
pub struct StealQueue<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks pushed but not yet reported done. Queued and executing
    /// tasks both count; the job is over when this reaches zero.
    live: AtomicUsize,
    seed: u64,
}

impl<T: Send> StealQueue<T> {
    /// Creates a queue with `workers` deques. `seed` fixes every
    /// worker's steal-victim stream.
    pub fn new(workers: usize, seed: u64) -> Self {
        assert!(workers > 0, "a steal queue needs at least one worker");
        StealQueue {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            live: AtomicUsize::new(0),
            seed,
        }
    }

    /// The number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Pushes a root task onto worker `index % workers`'s deque before
    /// the workers start. Also usable mid-run from any thread.
    pub fn push(&self, index: usize, task: T) {
        self.live.fetch_add(1, Ordering::SeqCst);
        let slot = index % self.deques.len();
        self.deques[slot].lock().unwrap().push_back(task);
    }

    /// Tasks queued or executing right now. Zero means quiescent.
    pub fn live_tasks(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// A handle for worker `index` (must be `< workers()`).
    pub fn worker(&self, index: usize) -> StealWorker<'_, T> {
        assert!(index < self.deques.len(), "worker index out of range");
        // Decorrelate the per-worker streams: two SplitMix64 steps from
        // (seed, index) land far apart for adjacent indices.
        let mut state = self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        splitmix64(&mut state);
        StealWorker { queue: self, index, rng: state }
    }

    fn pop_own(&self, index: usize) -> Option<T> {
        self.deques[index].lock().unwrap().pop_back()
    }

    fn steal_from(&self, victim: usize) -> Option<T> {
        self.deques[victim].lock().unwrap().pop_front()
    }
}

/// One worker's view of a [`StealQueue`]: LIFO over its own deque,
/// random-victim FIFO steals when dry.
#[derive(Debug)]
pub struct StealWorker<'q, T> {
    queue: &'q StealQueue<T>,
    index: usize,
    rng: u64,
}

impl<'q, T: Send> StealWorker<'q, T> {
    /// This worker's deque index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Pushes a successor task onto this worker's own deque. The caller
    /// still owes a [`StealWorker::task_done`] for the task it is
    /// currently executing — spawning does not complete it.
    pub fn push(&self, task: T) {
        self.queue.push(self.index, task);
    }

    /// Marks one task finished. Call exactly once per task returned by
    /// [`StealWorker::next_task`], after any successors were pushed:
    /// completing before spawning opens a window where `live` hits zero
    /// and other workers exit with work still to come.
    pub fn task_done(&self) {
        let prev = self.queue.live.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "task_done without a live task");
    }

    /// Returns the next task, stealing if this worker's deque is empty,
    /// or `None` once the whole queue is quiescent. Blocks (yield +
    /// short sleeps — tasks here run for milliseconds, not nanoseconds)
    /// while other workers still hold live tasks that may spawn more.
    pub fn next_task(&mut self) -> Option<T> {
        let n = self.queue.workers();
        let mut idle_spins = 0u32;
        loop {
            if let Some(task) = self.queue.pop_own(self.index) {
                return Some(task);
            }
            // Own deque dry: sweep victims starting from a random one so
            // contention spreads, wrapping over every other worker.
            if n > 1 {
                let start = (splitmix64(&mut self.rng) % (n as u64 - 1)) as usize;
                for k in 0..n - 1 {
                    let victim = (self.index + 1 + (start + k) % (n - 1)) % n;
                    if let Some(task) = self.queue.steal_from(victim) {
                        return Some(task);
                    }
                }
            }
            if self.queue.live_tasks() == 0 {
                return None;
            }
            // Someone is still executing and may spawn successors.
            // Back off exponentially (50 µs doubling to 1.6 ms): tasks
            // run for milliseconds, so even a sleepy thief picks up new
            // frontier work promptly, while on an oversubscribed box a
            // flat short sleep has idle workers preempting the one
            // doing the work tens of thousands of times a second.
            idle_spins += 1;
            if idle_spins < 4 {
                std::thread::yield_now();
            } else {
                let exp = (idle_spins - 4).min(5);
                std::thread::sleep(std::time::Duration::from_micros(50 << exp));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Tasks spawn a binary tree of successors; every node must execute
    /// exactly once and all workers must exit.
    fn run_tree(workers: usize, depth: u32) -> usize {
        let queue = StealQueue::new(workers, 0xDEC0_DE);
        let executed = AtomicUsize::new(0);
        queue.push(0, depth);
        std::thread::scope(|s| {
            for w in 0..workers {
                let mut worker = queue.worker(w);
                let executed = &executed;
                s.spawn(move || {
                    while let Some(d) = worker.next_task() {
                        executed.fetch_add(1, Ordering::SeqCst);
                        if d > 0 {
                            worker.push(d - 1);
                            worker.push(d - 1);
                        }
                        worker.task_done();
                    }
                });
            }
        });
        assert_eq!(queue.live_tasks(), 0);
        executed.load(Ordering::SeqCst)
    }

    #[test]
    fn executes_every_spawned_task_exactly_once() {
        // A depth-d binary tree has 2^(d+1) - 1 nodes.
        for workers in [1, 2, 4, 8] {
            assert_eq!(run_tree(workers, 9), (1 << 10) - 1, "workers={workers}");
        }
    }

    #[test]
    fn steals_reach_work_pushed_to_one_deque() {
        // All roots land on worker 0; the others can only make progress
        // by stealing. Every task sleeps so worker 0 cannot drain alone
        // before the others spin up.
        let queue = StealQueue::new(4, 1);
        let executed = AtomicUsize::new(0);
        let by_thief = AtomicUsize::new(0);
        for _ in 0..64 {
            queue.push(0, ());
        }
        std::thread::scope(|s| {
            for w in 0..4 {
                let mut worker = queue.worker(w);
                let (executed, by_thief) = (&executed, &by_thief);
                s.spawn(move || {
                    while let Some(()) = worker.next_task() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        executed.fetch_add(1, Ordering::SeqCst);
                        if worker.index() != 0 {
                            by_thief.fetch_add(1, Ordering::SeqCst);
                        }
                        worker.task_done();
                    }
                });
            }
        });
        assert_eq!(executed.load(Ordering::SeqCst), 64);
        // With 64 one-millisecond tasks and three idle thieves, at least
        // one steal is effectively certain; zero would mean stealing is
        // broken.
        assert!(by_thief.load(Ordering::SeqCst) > 0, "no task was ever stolen");
    }

    #[test]
    fn quiescent_queue_returns_none_immediately() {
        let queue: StealQueue<()> = StealQueue::new(2, 7);
        let mut worker = queue.worker(0);
        assert!(worker.next_task().is_none());
    }

    #[test]
    fn victim_streams_replay_per_seed() {
        let (qa, qb, qc) = (
            StealQueue::<()>::new(4, 42),
            StealQueue::<()>::new(4, 42),
            StealQueue::<()>::new(4, 43),
        );
        assert_eq!(qa.worker(1).rng, qb.worker(1).rng);
        assert_ne!(qa.worker(1).rng, qc.worker(1).rng);
    }
}
