#!/bin/bash
# Tier-1 verify with the network ruled out: the workspace must build and
# test from the committed sources alone (in-tree prng/proptest/criterion
# shims, no crates-io access). Used standalone and as the preflight of
# run_experiments.sh.
#
# Usage: scripts/check_offline.sh [--quick]
#   --quick   build only (skip the test suite); used where a full test
#             run already happened in the same CI job.
set -eu
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== tier-1 (offline): cargo build --release =="
cargo build --release --workspace --offline

if [ "$QUICK" -eq 0 ]; then
    echo "== tier-1 (offline): cargo test -q =="
    cargo test -q --workspace --offline
fi

# Lint the crates the incremental round pipeline touches. Gated on
# clippy being installed so a bare-toolchain checkout still passes
# tier-1.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== lint (offline): cargo clippy -D warnings =="
    cargo clippy --offline -p aig -p bitsim -p errmetrics -p lac \
        -p estimate -p accals -p accals-bench -p fuzzkit \
        -p parkit -p sweep -p benchgen -p circuitio -- -D warnings
else
    echo "== lint: cargo clippy not installed, skipping =="
fi

# The smoke run itself asserts that the incremental round pipeline
# (trials + candidate store) commits bit-identically to the fresh path.
echo "== bench smoke (offline): bench_flow --smoke =="
cargo run --release --offline -p accals-bench --bin bench_flow -- --smoke

# Estimation smoke: the bound-pruned top-k scorer must reproduce the
# dense score-and-select top set bit-for-bit; warm candidate generation
# must reproduce fresh generation (lists and deviation payloads); and
# repeated warm scoring must draw all scratch from the deviation pool
# (zero fresh allocations, asserted on the pool's counter).
echo "== bench smoke (offline): bench_estimate --smoke =="
cargo run --release --offline -p accals-bench --bin bench_estimate -- --smoke

# Sweep smoke: the batched design-space-exploration engine (shared
# simulation, cohort execution with cache forking, work-stealing
# scheduling) must reproduce every grid point's standalone trajectory
# bit-for-bit at every worker count.
echo "== bench smoke (offline): bench_sweep --smoke =="
cargo run --release --offline -p accals-bench --bin bench_sweep -- --smoke

# Windowed-round smoke: a full-span window must run bit-identically to
# the dense flow, and a strict sub-window flow must be deterministic
# across thread counts, meet its error bound, and actually restrict
# its rounds.
echo "== bench smoke (offline): bench_window --smoke =="
cargo run --release --offline -p accals-bench --bin bench_window -- --smoke

# Fixed-seed smoke fuzz: a short deterministic soak of the differential
# oracles (mask cache, candidate store, trial eval, BDD exact error) —
# any divergence prints a one-line repro and fails the check.
echo "== fuzz smoke (offline): fuzzkit --smoke =="
cargo run --release --offline -p fuzzkit --bin fuzzkit -- --smoke

echo "check_offline: OK"
