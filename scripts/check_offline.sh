#!/bin/bash
# Tier-1 verify with the network ruled out: the workspace must build and
# test from the committed sources alone (in-tree prng/proptest/criterion
# shims, no crates-io access). Used standalone and as the preflight of
# run_experiments.sh.
#
# Usage: scripts/check_offline.sh [--quick]
#   --quick   build only (skip the test suite); used where a full test
#             run already happened in the same CI job.
set -eu
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "== tier-1 (offline): cargo build --release =="
cargo build --release --workspace --offline

if [ "$QUICK" -eq 0 ]; then
    echo "== tier-1 (offline): cargo test -q =="
    cargo test -q --workspace --offline
fi

echo "check_offline: OK"
